// frozen.hpp -- frozen CSR structure-of-arrays storage for the DODGr.
//
// The mutable build-time form of the graph is a hash-partitioned
// `comm::distributed_map<vertex_id, vertex_record>` of per-vertex AoS
// records (graph/dodgr.hpp): ideal for the shuffle-heavy construction
// pipeline, poor for the survey hot path (one heap allocation per vertex,
// pointer-chasing hash iteration, 48-byte AoS adjacency entries of which
// the intersection kernels read only the 16-byte order key).
//
// `freeze()` compacts each rank's records into column arenas:
//
//   vertex columns (local vertices, sorted by the <+ order key):
//     vid[], degree[], order_rank[], offset[n+1], vmeta[]
//   edge columns (concatenated Adjm+ lists, CSR):
//     target[], target_rank[], target_out_degree[], emeta[], target_vmeta[]
//
// behind `frozen_dodgr<VMeta, EMeta>`, which exposes the same read API the
// survey engine traverses (`local_find(v)` record views, random-access
// adjacency spans), so core/survey.hpp, core/plan.hpp and core/analytics.hpp
// run on either storage form unchanged.  Sorting the vertex walk by <+ rank
// gives the degeneracy-ordered CSR traversal of Pashanasangi & Seshadhri.
//
// Projection push-down (the ROADMAP follow-up to PR 4's sender-side wire
// projections): `freeze(g, vproj, eproj)` -- or `freeze(plan)` for a survey
// plan's projections -- applies the metadata projections ONCE at freeze
// time and stores only the projected columns, so every fused survey over
// the same projection reads pre-projected arenas instead of projecting per
// message.  A projection to `graph::none` (or any empty type) stores a
// zero-byte column: a counting survey's frozen graph spends 24 bytes per
// directed edge regardless of how rich the build-time metadata was.
//
// Arenas are either rank-owned vectors (after freeze()) or borrowed views
// into an mmap'ed snapshot (graph/snapshot.hpp), held alive by a shared
// keepalive token -- reloading a frozen graph from disk touches no edge
// shuffle and no degeneracy peel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/key_hash.hpp"
#include "core/intersect.hpp"  // core::bitmap_view (dependency-free kernel header)
#include "core/parallel.hpp"   // chunked fork-join for the parallel freeze fill
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// Freeze-time knobs for the hub/tail bitmap split (docs/ARCHITECTURE.md,
/// "Parallel traversal & intersection kernels").  A local vertex whose
/// Adjm+ out-degree reaches `hub_degree_threshold` gets a dense bitmap row
/// over its raw neighbour ids, provided the row stays within
/// `hub_bitmap_max_bytes_per_edge` bytes per out-edge (a density guard: the
/// default of 2 B/edge admits rows at >= 1/16 id-span density, so sparse
/// ultra-wide spans keep the gallop path instead of bloating the arenas).
/// Rows are only built when BOTH projected metadata types are empty --
/// a bitmap answers membership, not which entry matched, so any survey that
/// must read matched-entry metadata uses the list kernels regardless.
struct freeze_options {
  std::uint64_t hub_degree_threshold = 64;
  std::uint64_t hub_bitmap_max_bytes_per_edge = 2;
  bool build_hub_bitmaps = true;
  /// Worker threads for the rank-local column fill (0 = TRIPOLL_THREADS
  /// from the environment, defaulting to 1).  The arenas are SoA and every
  /// cell is written exactly once from its vertex's chunk, so the frozen
  /// bytes are identical at every thread count; only the wall time changes.
  int threads = 0;
};

/// One contiguous frozen column: either owned storage (freeze) or a view
/// into a mapped snapshot whose lifetime is pinned by `keepalive`.
template <typename T>
class arena {
 public:
  arena() = default;
  explicit arena(std::vector<T> v)
      : owned_(std::move(v)), data_(owned_.data()), n_(owned_.size()) {}
  arena(const T* p, std::size_t n, std::shared_ptr<const void> keepalive)
      : data_(p), n_(n), keepalive_(std::move(keepalive)) {}

  arena(arena&& o) noexcept { *this = std::move(o); }
  arena& operator=(arena&& o) noexcept {
    owned_ = std::move(o.owned_);
    keepalive_ = std::move(o.keepalive_);
    n_ = o.n_;
    data_ = owned_.empty() ? o.data_ : owned_.data();
    o.data_ = nullptr;
    o.n_ = 0;
    return *this;
  }
  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;

  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] std::size_t bytes() const noexcept { return n_ * sizeof(T); }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  std::size_t n_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// Metadata column: a plain arena for stateful types; for EMPTY metadata
/// (graph::none, dropped projections) it stores nothing at all -- zero heap
/// bytes, zero snapshot bytes -- and hands out a shared dummy instance.
template <typename T, bool Empty = std::is_empty_v<T>>
class meta_column {
 public:
  meta_column() = default;
  explicit meta_column(std::vector<T> v) : col_(std::move(v)) {}
  meta_column(const T* p, std::size_t n, std::shared_ptr<const void> keepalive)
      : col_(p, n, std::move(keepalive)) {}

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return col_[i]; }
  [[nodiscard]] const T* data() const noexcept { return col_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return col_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return col_.bytes(); }
  static constexpr std::size_t element_size = sizeof(T);

 private:
  arena<T> col_;
};

template <typename T>
class meta_column<T, true> {
 public:
  meta_column() = default;
  explicit meta_column(std::size_t n) noexcept : n_(n) {}

  [[nodiscard]] const T& operator[](std::size_t) const noexcept { return dummy(); }
  [[nodiscard]] const T* data() const noexcept { return nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return 0; }
  static constexpr std::size_t element_size = 0;

  [[nodiscard]] static const T& dummy() noexcept {
    static const T instance{};
    return instance;
  }

 private:
  std::size_t n_ = 0;
};

namespace detail {

/// Incremental FNV-1a accumulator (same constants as the snapshot-layer
/// checksum): the building block of the snapshot content id.  Lives here
/// rather than in snapshot.hpp because the include direction runs
/// snapshot.hpp -> frozen.hpp and the id is a property of the arenas, not
/// of any particular file that stores them.
struct fnv1a_accumulator {
  std::uint64_t h = 14695981039346656037ull;

  void mix_bytes(const void* p, std::size_t n) noexcept {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }

  /// Mix a u64 as its little-endian byte image (endianness-stable, matching
  /// the snapshot wire format).
  void mix_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 1099511628211ull;
    }
  }
};

}  // namespace detail

/// The raw column bundle of one rank's frozen graph.  freeze() fills it
/// from the mutable map; load_snapshot() fills it with views into a mapped
/// file.  Public so the snapshot layer and white-box tests can reach the
/// columns without friending.
template <typename VMeta, typename EMeta>
struct frozen_arenas {
  // vertex columns (n entries; offset has n+1)
  arena<vertex_id> vid;
  arena<std::uint64_t> degree;
  arena<std::uint64_t> order_rank;
  arena<std::uint64_t> offset;
  meta_column<VMeta> vmeta;
  // edge columns (m entries)
  arena<vertex_id> target;
  arena<std::uint64_t> target_rank;
  arena<std::uint64_t> target_out_degree;
  meta_column<EMeta> emeta;
  meta_column<VMeta> target_vmeta;
  // hub bitmap columns (present iff any row was built: bm_offset has n+1
  // word offsets into bm_words, bm_base has n base ids; all empty otherwise)
  arena<std::uint64_t> bm_offset;
  arena<std::uint64_t> bm_base;
  arena<std::uint64_t> bm_words;
};

/// Rank-local storage footprint of a frozen graph (bitwise-reducible).
struct frozen_storage_stats {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;             ///< local directed (out-)edges
  std::uint64_t vertex_bytes = 0;      ///< vid+degree+rank+offset+vmeta arenas
  std::uint64_t edge_bytes = 0;        ///< target+rank+outdeg+emeta+tvmeta arenas
  std::uint64_t index_bytes = 0;       ///< id -> slot hash index (estimate)
  std::uint64_t bitmap_bytes = 0;      ///< hub bitmap rows + offset/base columns
  std::uint64_t hub_vertices = 0;      ///< local vertices owning a bitmap row

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return vertex_bytes + edge_bytes + index_bytes + bitmap_bytes;
  }
  [[nodiscard]] double bytes_per_edge() const noexcept {
    return edges > 0 ? static_cast<double>(total_bytes()) / static_cast<double>(edges)
                     : 0.0;
  }
};

/// Immutable CSR structure-of-arrays form of a DODGr.  Same read API as the
/// mutable `dodgr` (record views, adjacency spans sorted by <+), no write
/// API: build with the graph_builder, then freeze.
template <typename VMeta, typename EMeta>
class frozen_dodgr {
 public:
  using vertex_meta_type = VMeta;
  using edge_meta_type = EMeta;
  using arenas_type = frozen_arenas<VMeta, EMeta>;
  using self = frozen_dodgr<VMeta, EMeta>;

  /// One Adjm+ entry materialized from the SoA columns.  Mirrors the data
  /// members of the mutable graph's `adj_entry`; metadata members are
  /// references into the arenas (or a shared dummy for empty metadata).
  struct entry_view {
    vertex_id target = 0;
    std::uint64_t target_rank = 0;
    std::uint64_t target_out_degree = 0;
    const EMeta& edge_meta;
    const VMeta& target_meta;

    [[nodiscard]] order_key key() const noexcept {
      return make_order_key(target, target_rank);
    }
  };

  /// Random-access view over one vertex's CSR adjacency slice.  Iterators
  /// materialize `entry_view`s by value (the SoA twin of
  /// serial::raw_read_iterator's by-value reference; the C++20
  /// random-access requirements this genuinely models are what the survey
  /// engine and intersection kernels rely on).
  class adj_span {
   public:
    class iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = entry_view;
      using difference_type = std::ptrdiff_t;
      using pointer = void;
      using reference = entry_view;

      iterator() = default;
      iterator(const arenas_type* ar, std::size_t i) noexcept : ar_(ar), i_(i) {}

      [[nodiscard]] entry_view operator*() const noexcept {
        return entry_view{ar_->target[i_], ar_->target_rank[i_],
                          ar_->target_out_degree[i_], ar_->emeta[i_],
                          ar_->target_vmeta[i_]};
      }
      [[nodiscard]] entry_view operator[](difference_type n) const noexcept {
        return *(*this + n);
      }

      iterator& operator++() noexcept { ++i_; return *this; }
      iterator operator++(int) noexcept { auto t = *this; ++i_; return t; }
      iterator& operator--() noexcept { --i_; return *this; }
      iterator operator--(int) noexcept { auto t = *this; --i_; return t; }
      iterator& operator+=(difference_type n) noexcept {
        i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
        return *this;
      }
      iterator& operator-=(difference_type n) noexcept { return *this += -n; }
      [[nodiscard]] iterator operator+(difference_type n) const noexcept {
        auto t = *this;
        return t += n;
      }
      [[nodiscard]] friend iterator operator+(difference_type n, iterator it) noexcept {
        return it + n;
      }
      [[nodiscard]] iterator operator-(difference_type n) const noexcept {
        auto t = *this;
        return t -= n;
      }
      [[nodiscard]] difference_type operator-(const iterator& o) const noexcept {
        return static_cast<difference_type>(i_) - static_cast<difference_type>(o.i_);
      }
      [[nodiscard]] bool operator==(const iterator& o) const noexcept {
        return i_ == o.i_;
      }
      [[nodiscard]] auto operator<=>(const iterator& o) const noexcept {
        return i_ <=> o.i_;
      }

     private:
      const arenas_type* ar_ = nullptr;
      std::size_t i_ = 0;
    };

    adj_span() = default;
    adj_span(const arenas_type* ar, std::size_t first, std::size_t last) noexcept
        : ar_(ar), first_(first), last_(last) {}

    [[nodiscard]] std::size_t size() const noexcept { return last_ - first_; }
    [[nodiscard]] bool empty() const noexcept { return first_ == last_; }
    [[nodiscard]] iterator begin() const noexcept { return iterator(ar_, first_); }
    [[nodiscard]] iterator end() const noexcept { return iterator(ar_, last_); }
    [[nodiscard]] entry_view operator[](std::size_t i) const noexcept {
      return *iterator(ar_, first_ + i);
    }

   private:
    const arenas_type* ar_ = nullptr;
    std::size_t first_ = 0;
    std::size_t last_ = 0;
  };

  /// Read view of one vertex record: the data members the engine reads from
  /// the mutable `vertex_record`, backed by the columns.
  struct record_view {
    std::uint64_t degree = 0;
    std::uint64_t order_rank = 0;
    const VMeta& meta;
    adj_span adj;

    [[nodiscard]] std::uint64_t out_degree() const noexcept { return adj.size(); }
  };

  using record_type = record_view;
  using entry_type = entry_view;

  frozen_dodgr(comm::communicator& c, arenas_type&& ar, ordering_policy ordering)
      : comm_(&c), ar_(std::move(ar)), ordering_(ordering) {
    // The id->slot index (and record_locator) is 32-bit by design; a rank
    // holding >= 2^32 local vertices must fail loudly, not wrap silently.
    if (ar_.vid.size() > std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error(
          "frozen_dodgr: more than 2^32-1 local vertices on one rank; the "
          "32-bit slot index cannot address this partition (use more ranks)");
    }
    index_.reserve(ar_.vid.size());
    for (std::size_t i = 0; i < ar_.vid.size(); ++i) {
      index_.emplace(ar_.vid[i], static_cast<std::uint32_t>(i));
    }
  }

  frozen_dodgr(const frozen_dodgr&) = delete;
  frozen_dodgr& operator=(const frozen_dodgr&) = delete;
  frozen_dodgr(frozen_dodgr&&) = default;

  [[nodiscard]] comm::communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] int owner(vertex_id v) const noexcept {
    return comm_->owner(comm::key_hash<vertex_id>{}(v));
  }

  /// Nullable record handle (same shape as the mutable graph's pointer
  /// return: contextually bool, -> and * reach the record).
  [[nodiscard]] std::optional<record_view> local_find(vertex_id v) const {
    const auto it = index_.find(v);
    if (it == index_.end()) return std::nullopt;
    return record_at(it->second);
  }

  /// Compact locator for a known-local record: the CSR slot index (4
  /// bytes), resolved back to a view without touching the hash index.
  /// Precondition: `v` is stored on this rank.
  using record_locator = std::uint32_t;

  [[nodiscard]] record_locator locate(vertex_id v) const { return index_.at(v); }
  [[nodiscard]] record_view resolve_record(record_locator slot) const {
    return record_at(slot);
  }

  /// Vertex id stored at a CSR slot (for chunked slot-range walks).
  [[nodiscard]] vertex_id vid_at(record_locator slot) const noexcept {
    return ar_.vid[slot];
  }

  /// Dense hub bitmap row for a CSR slot, or an empty view when the vertex
  /// has no row (tail vertex, budget-rejected span, bitmaps disabled at
  /// freeze time, or a pre-bitmap v1 snapshot).  Row semantics: bit
  /// (id - base) set iff `id` is in the vertex's Adjm+ target set.
  [[nodiscard]] core::bitmap_view hub_bitmap(record_locator slot) const noexcept {
    if (ar_.bm_offset.size() != ar_.vid.size() + 1) return {};
    const std::uint64_t first = ar_.bm_offset[slot];
    const std::uint64_t last = ar_.bm_offset[slot + 1];
    if (first == last) return {};
    return core::bitmap_view{ar_.bm_words.data() + first,
                             static_cast<std::size_t>(last - first), ar_.bm_base[slot]};
  }

  /// True when at least one local vertex owns a bitmap row.
  [[nodiscard]] bool has_hub_bitmaps() const noexcept {
    return ar_.bm_words.size() > 0;
  }

  /// for_all_local with the CSR slot supplied alongside: scans that cache
  /// locators (the survey dry run) get them for free from the loop index.
  template <typename Fn>
  void for_all_local_located(Fn&& fn) const {
    for (std::size_t i = 0; i < ar_.vid.size(); ++i) {
      const record_view rec = record_at(i);
      fn(ar_.vid[i], rec, static_cast<record_locator>(i));
    }
  }

  /// Apply `fn(vertex_id, const record_view&)` to every local vertex, in
  /// ascending <+ order (the degeneracy-ordered CSR walk).
  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    for (std::size_t i = 0; i < ar_.vid.size(); ++i) {
      const record_view rec = record_at(i);
      fn(ar_.vid[i], rec);
    }
  }

  [[nodiscard]] std::size_t local_num_vertices() const noexcept {
    return ar_.vid.size();
  }
  [[nodiscard]] std::size_t local_num_edges() const noexcept {
    return ar_.target.size();
  }

  /// Collective: Table 1 columns (cached after the first call).
  [[nodiscard]] graph_census census() {
    if (census_valid_) return census_;
    std::uint64_t verts = ar_.vid.size(), dir_edges = 0, dmax = 0, dmax_plus = 0,
                  wedges = 0;
    for (std::size_t i = 0; i < ar_.vid.size(); ++i) {
      dir_edges += ar_.degree[i];
      dmax = std::max(dmax, ar_.degree[i]);
      const std::uint64_t dp = ar_.offset[i + 1] - ar_.offset[i];
      dmax_plus = std::max(dmax_plus, dp);
      wedges += dp * (dp - 1) / 2;
    }
    census_.num_vertices = comm_->all_reduce_sum(verts);
    census_.num_directed_edges = comm_->all_reduce_sum(dir_edges);
    census_.max_degree = comm_->all_reduce_max(dmax);
    census_.max_out_degree = comm_->all_reduce_max(dmax_plus);
    census_.wedge_checks = comm_->all_reduce_sum(wedges);
    census_valid_ = true;
    return census_;
  }

  [[nodiscard]] ordering_policy ordering() const noexcept { return ordering_; }

  [[nodiscard]] const arenas_type& arenas() const noexcept { return ar_; }

  /// Rank-local content id: FNV-1a over the graph's identity fields
  /// (nranks, rank, ordering, n, m, metadata element sizes) followed by the
  /// logical bytes of every stored column in file order.  Codec- and
  /// storage-independent: a freeze(), a raw (v2) reload and a compressed
  /// (v3) reload of the same graph all report the same id, because v3
  /// sections decode back to the exact arena bytes.  Never 0 (0 is the
  /// "absent" wire value in snapshot headers); not cryptographic -- this is
  /// a cache key and an operator diffing aid, with the same failure model
  /// as the snapshot checksums.  Computed lazily and cached; save_snapshot
  /// stamps it into v3 headers and load_snapshot adopts the stamped value,
  /// so a v3 reload pays no hash pass.
  [[nodiscard]] std::uint64_t snapshot_id() const {
    if (snapshot_id_ != 0) return snapshot_id_;
    detail::fnv1a_accumulator acc;
    acc.mix_u64(static_cast<std::uint64_t>(comm_->size()));
    acc.mix_u64(static_cast<std::uint64_t>(comm_->rank()));
    acc.mix_u64(static_cast<std::uint64_t>(ordering_));
    acc.mix_u64(ar_.vid.size());
    acc.mix_u64(ar_.target.size());
    acc.mix_u64(meta_column<VMeta>::element_size);
    acc.mix_u64(meta_column<EMeta>::element_size);
    const auto mix_column = [&acc](const auto& col) {
      if (col.bytes() > 0) acc.mix_bytes(col.data(), col.bytes());
    };
    mix_column(ar_.vid);
    mix_column(ar_.degree);
    mix_column(ar_.order_rank);
    mix_column(ar_.offset);
    mix_column(ar_.vmeta);
    mix_column(ar_.target);
    mix_column(ar_.target_rank);
    mix_column(ar_.target_out_degree);
    mix_column(ar_.emeta);
    mix_column(ar_.target_vmeta);
    mix_column(ar_.bm_offset);
    mix_column(ar_.bm_base);
    mix_column(ar_.bm_words);
    snapshot_id_ = acc.h != 0 ? acc.h : 1;
    return snapshot_id_;
  }

  /// Adopt a content id stamped in a snapshot header (v3 saves).  0 means
  /// "absent" (v1/v2 files, pre-id v3 files) and is ignored, leaving the
  /// compute-on-demand path of snapshot_id().
  void adopt_snapshot_id(std::uint64_t id) noexcept {
    if (id != 0) snapshot_id_ = id;
  }

  /// Rank-local arena footprint (exact for the columns; the id->slot index
  /// is estimated at one bucket pointer plus one packed node per vertex).
  [[nodiscard]] frozen_storage_stats local_storage_stats() const noexcept {
    frozen_storage_stats s;
    s.vertices = ar_.vid.size();
    s.edges = ar_.target.size();
    s.vertex_bytes = ar_.vid.bytes() + ar_.degree.bytes() + ar_.order_rank.bytes() +
                     ar_.offset.bytes() + ar_.vmeta.bytes();
    s.edge_bytes = ar_.target.bytes() + ar_.target_rank.bytes() +
                   ar_.target_out_degree.bytes() + ar_.emeta.bytes() +
                   ar_.target_vmeta.bytes();
    s.index_bytes =
        index_.bucket_count() * sizeof(void*) +
        index_.size() * (sizeof(std::pair<vertex_id, std::uint32_t>) + sizeof(void*));
    s.bitmap_bytes = ar_.bm_offset.bytes() + ar_.bm_base.bytes() + ar_.bm_words.bytes();
    if (ar_.bm_offset.size() == ar_.vid.size() + 1) {
      for (std::size_t i = 0; i < ar_.vid.size(); ++i) {
        if (ar_.bm_offset[i + 1] > ar_.bm_offset[i]) ++s.hub_vertices;
      }
    }
    return s;
  }

  /// Collective: storage footprint summed over ranks (identical everywhere).
  [[nodiscard]] frozen_storage_stats global_storage_stats() {
    const auto local = local_storage_stats();
    frozen_storage_stats g;
    g.vertices = comm_->all_reduce_sum(local.vertices);
    g.edges = comm_->all_reduce_sum(local.edges);
    g.vertex_bytes = comm_->all_reduce_sum(local.vertex_bytes);
    g.edge_bytes = comm_->all_reduce_sum(local.edge_bytes);
    g.index_bytes = comm_->all_reduce_sum(local.index_bytes);
    g.bitmap_bytes = comm_->all_reduce_sum(local.bitmap_bytes);
    g.hub_vertices = comm_->all_reduce_sum(local.hub_vertices);
    return g;
  }

 private:
  [[nodiscard]] record_view record_at(std::size_t i) const noexcept {
    return record_view{ar_.degree[i], ar_.order_rank[i], ar_.vmeta[i],
                       adj_span(&ar_, ar_.offset[i], ar_.offset[i + 1])};
  }

  comm::communicator* comm_;
  arenas_type ar_;
  std::unordered_map<vertex_id, std::uint32_t, comm::key_hash<vertex_id>> index_;
  ordering_policy ordering_ = ordering_policy::degree;
  graph_census census_{};
  bool census_valid_ = false;
  mutable std::uint64_t snapshot_id_ = 0;  ///< 0: not yet computed/adopted
};

namespace detail {

/// Identity metadata copy for projection-free freezes (the graph-layer twin
/// of tripoll::identity_projection, which lives in core/).
struct copy_meta {
  template <typename T>
  [[nodiscard]] const T& operator()(const T& v) const noexcept {
    return v;
  }
};

template <typename Col, typename T>
[[nodiscard]] Col make_meta_column(std::vector<T>&& values, std::size_t n) {
  if constexpr (Col::element_size == 0) {
    (void)values;
    return Col(n);
  } else {
    return Col(std::move(values));
  }
}

/// Hub bitmap rows over a finished CSR (shared by freeze() and the overlay's
/// incremental re-freeze).  Built over raw target ids -- the adjacency is
/// sorted by <+ order key, not id, so each row's base/span comes from a
/// min/max scan of the slice.  Two passes around a serial prefix sum: a
/// parallel admission pass decides each vertex's row size, the prefix sum
/// lays the rows out in vertex order (exactly where the serial appender put
/// them), and a parallel fill pass sets the bits of disjoint rows.  Leaves
/// all three outputs empty when no row survives admission.
inline void build_hub_bitmap_columns(std::size_t n, const std::uint64_t* offset,
                                     const vertex_id* target, const freeze_options& opts,
                                     int threads, std::vector<std::uint64_t>& bm_offset,
                                     std::vector<std::uint64_t>& bm_base,
                                     std::vector<std::uint64_t>& bm_words) {
  bm_offset.assign(n + 1, 0);
  bm_base.assign(n, 0);
  bm_words.clear();
  std::vector<std::uint64_t> row_words(n, 0), row_lo(n, 0);
  core::chunk_queue admit(n, core::chunk_size_for(n, threads));
  core::fork_join(threads, [&](int) {
    std::size_t first = 0, last = 0;
    while (admit.next(first, last)) {
      for (std::size_t i = first; i < last; ++i) {
        const std::uint64_t off = offset[i];
        const std::uint64_t d = offset[i + 1] - off;
        if (d == 0 || d < opts.hub_degree_threshold) continue;
        std::uint64_t lo = target[off];
        std::uint64_t hi = target[off];
        for (std::uint64_t k = 1; k < d; ++k) {
          lo = std::min(lo, target[off + k]);
          hi = std::max(hi, target[off + k]);
        }
        const std::uint64_t words = ((hi - lo) >> 6) + 1;
        if (words * 8 > opts.hub_bitmap_max_bytes_per_edge * d) continue;  // too sparse
        row_words[i] = words;
        row_lo[i] = lo;
      }
    }
  });
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bm_offset[i] = total;
    if (row_words[i] > 0) bm_base[i] = row_lo[i];
    total += row_words[i];
  }
  bm_offset[n] = total;
  if (total == 0) {  // no row survived: store nothing at all
    bm_offset.clear();
    bm_base.clear();
    return;
  }
  bm_words.assign(total, 0);
  core::chunk_queue fill(n, core::chunk_size_for(n, threads));
  core::fork_join(threads, [&](int) {
    std::size_t first = 0, last = 0;
    while (fill.next(first, last)) {
      for (std::size_t i = first; i < last; ++i) {
        if (row_words[i] == 0) continue;
        const std::uint64_t off = offset[i];
        const std::uint64_t d = offset[i + 1] - off;
        const std::uint64_t lo = row_lo[i];
        const std::uint64_t row = bm_offset[i];
        for (std::uint64_t k = 0; k < d; ++k) {
          const std::uint64_t bit = target[off + k] - lo;
          bm_words[row + (bit >> 6)] |= std::uint64_t{1} << (bit & 63U);
        }
      }
    }
  });
}

}  // namespace detail

/// Freeze the mutable DODGr into CSR arenas with the metadata projections
/// applied ONCE, storing only the projected columns (projection push-down:
/// surveys over the frozen graph run with identity projections and read
/// pre-projected arenas).  Rank-local compaction; the mutable graph is left
/// untouched and may be discarded afterwards.
template <typename VMeta, typename EMeta, typename VProj, typename EProj>
[[nodiscard]] auto freeze(dodgr<VMeta, EMeta>& g, VProj vproj, EProj eproj,
                          const freeze_options& opts = {}) {
  using PV = std::remove_cvref_t<std::invoke_result_t<const VProj&, const VMeta&>>;
  using PE = std::remove_cvref_t<std::invoke_result_t<const EProj&, const EMeta&>>;
  using out_type = frozen_dodgr<PV, PE>;
  using arenas_type = typename out_type::arenas_type;
  using source_record = typename dodgr<VMeta, EMeta>::record_type;

  // Deterministic vertex walk order: ascending <+ key, so the CSR traversal
  // visits vertices in peel/degree order regardless of hash-map iteration.
  std::vector<std::pair<order_key, const source_record*>> order;
  order.reserve(g.local_num_vertices());
  g.for_all_local([&](const vertex_id& v, const source_record& rec) {
    order.emplace_back(make_order_key(v, rec.order_rank), &rec);
  });
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::size_t n = order.size();
  const int threads = core::resolve_threads(opts.threads);

  // CSR offsets first (serial size scan + prefix sum): they are both a
  // snapshot column and the partition that lets the fill below run over
  // disjoint vertex chunks with no cross-thread writes.
  std::vector<std::uint64_t> offset(n + 1);
  offset[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offset[i + 1] = offset[i] + order[i].second->adj.size();
  }
  const std::size_t m = offset[n];

  std::vector<vertex_id> vid(n);
  std::vector<std::uint64_t> degree(n), order_rank(n);
  std::vector<PV> vmeta;
  std::vector<vertex_id> target(m);
  std::vector<std::uint64_t> target_rank(m), target_outdeg(m);
  std::vector<PE> emeta;
  std::vector<PV> tvmeta;
  if constexpr (!std::is_empty_v<PV>) {
    vmeta.resize(n);
    tvmeta.resize(m);
  }
  if constexpr (!std::is_empty_v<PE>) emeta.resize(m);

  // Column fill over self-scheduled vertex chunks.  Every cell is written
  // exactly once, from the chunk owning its vertex, so the arenas come out
  // byte-identical at every thread count (projections are const-invoked and
  // must be thread-safe; the stateless norm trivially is).
  {
    core::chunk_queue chunks(n, core::chunk_size_for(n, threads));
    core::fork_join(threads, [&](int) {
      std::size_t first = 0, last = 0;
      while (chunks.next(first, last)) {
        for (std::size_t i = first; i < last; ++i) {
          const auto& [key, rec] = order[i];
          vid[i] = key.id;
          degree[i] = rec->degree;
          order_rank[i] = rec->order_rank;
          if constexpr (!std::is_empty_v<PV>) vmeta[i] = vproj(rec->meta);
          std::size_t e = offset[i];
          for (const auto& entry : rec->adj) {
            target[e] = entry.target;
            target_rank[e] = entry.target_rank;
            target_outdeg[e] = entry.target_out_degree;
            if constexpr (!std::is_empty_v<PE>) emeta[e] = eproj(entry.edge_meta);
            if constexpr (!std::is_empty_v<PV>) tvmeta[e] = vproj(entry.target_meta);
            ++e;
          }
        }
      }
    });
  }

  // Hub bitmap rows (counting-shape freezes only: both projected metadata
  // types empty, see freeze_options).  Shared with the overlay's
  // incremental re-freeze: detail::build_hub_bitmap_columns.
  std::vector<std::uint64_t> bm_offset, bm_base, bm_words;
  if constexpr (std::is_empty_v<PV> && std::is_empty_v<PE>) {
    if (opts.build_hub_bitmaps) {
      detail::build_hub_bitmap_columns(n, offset.data(), target.data(), opts, threads,
                                       bm_offset, bm_base, bm_words);
    }
  }

  arenas_type ar;
  ar.vid = arena<vertex_id>(std::move(vid));
  ar.degree = arena<std::uint64_t>(std::move(degree));
  ar.order_rank = arena<std::uint64_t>(std::move(order_rank));
  ar.offset = arena<std::uint64_t>(std::move(offset));
  ar.vmeta = detail::make_meta_column<meta_column<PV>>(std::move(vmeta), n);
  ar.target = arena<vertex_id>(std::move(target));
  ar.target_rank = arena<std::uint64_t>(std::move(target_rank));
  ar.target_out_degree = arena<std::uint64_t>(std::move(target_outdeg));
  ar.emeta = detail::make_meta_column<meta_column<PE>>(std::move(emeta), m);
  ar.target_vmeta = detail::make_meta_column<meta_column<PV>>(std::move(tvmeta), m);
  ar.bm_offset = arena<std::uint64_t>(std::move(bm_offset));
  ar.bm_base = arena<std::uint64_t>(std::move(bm_base));
  ar.bm_words = arena<std::uint64_t>(std::move(bm_words));
  return out_type(g.comm(), std::move(ar), g.ordering());
}

/// Freeze with the metadata stored unchanged (identity projections).
template <typename VMeta, typename EMeta>
[[nodiscard]] frozen_dodgr<VMeta, EMeta> freeze(dodgr<VMeta, EMeta>& g,
                                                const freeze_options& opts = {}) {
  return freeze(g, detail::copy_meta{}, detail::copy_meta{}, opts);
}

/// Freeze through a survey plan's declared projections: the frozen graph
/// stores exactly what that plan (and every plan sharing its projections)
/// ships -- run the plan over the frozen graph WITHOUT re-declaring the
/// projections, they are baked into the arenas.
template <typename Plan>
  requires requires(const Plan& p) {
    p.graph();
    p.vertex_proj();
    p.edge_proj();
  }
[[nodiscard]] auto freeze(const Plan& plan, const freeze_options& opts = {}) {
  return freeze(plan.graph(), plan.vertex_proj(), plan.edge_proj(), opts);
}

}  // namespace tripoll::graph
