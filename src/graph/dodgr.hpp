// dodgr.hpp -- the order-directed graph with metadata (Sec. 4.2).
//
// Storage follows the paper exactly: a distributed map keyed by vertex id
// whose value holds the vertex's metadata and its metadata-augmented
// out-adjacency
//
//   Adjm+(u) = { (v, meta(u,v), meta(v)) : v in Adj+(u) },
//
// ordered by the `<+` vertex order chosen at build time (degree or
// degeneracy; see graph/ordering.hpp).  Storing the *target's* metadata
// along each out-edge moves vertex-metadata storage from O(|V|) to O(|E|)
// but lets a triangle callback run with all six pieces of metadata already
// local.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/distributed_map.hpp"
#include "graph/ordering.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// One entry of Adjm+(u).
template <typename VertexMeta, typename EdgeMeta>
struct adj_entry {
  vertex_id target = 0;
  std::uint64_t target_rank = 0;        ///< target's <+ comparison rank
  std::uint64_t target_out_degree = 0;  ///< d+(target): drives pull decisions
  EdgeMeta edge_meta{};
  VertexMeta target_meta{};

  [[nodiscard]] order_key key() const noexcept {
    return make_order_key(target, target_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(target, target_rank, target_out_degree, edge_meta, target_meta);
  }
};

/// Per-vertex record: meta(u) plus Adjm+(u).
template <typename VertexMeta, typename EdgeMeta>
struct vertex_record {
  std::uint64_t degree = 0;      ///< d(u) in the undirected graph G
  std::uint64_t order_rank = 0;  ///< u's own <+ comparison rank
  VertexMeta meta{};
  std::vector<adj_entry<VertexMeta, EdgeMeta>> adj;  ///< sorted by <+ of target

  [[nodiscard]] std::uint64_t out_degree() const noexcept { return adj.size(); }
};

/// Collective census of a built graph (the Table 1 columns).
struct graph_census {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_directed_edges = 0;  ///< 2x undirected count (paper convention)
  std::uint64_t max_degree = 0;          ///< d_max
  std::uint64_t max_out_degree = 0;      ///< d_max^+
  std::uint64_t wedge_checks = 0;        ///< |W+| = sum_v C(d+(v), 2)
};

template <typename VertexMeta, typename EdgeMeta>
class dodgr {
 public:
  using vertex_meta_type = VertexMeta;
  using edge_meta_type = EdgeMeta;
  using entry_type = adj_entry<VertexMeta, EdgeMeta>;
  using record_type = vertex_record<VertexMeta, EdgeMeta>;
  using map_type = comm::distributed_map<vertex_id, record_type>;
  using self = dodgr<VertexMeta, EdgeMeta>;

  explicit dodgr(comm::communicator& c)
      : comm_(&c), map_(c), handle_(c.register_object(*this)) {}

  ~dodgr() { comm_->deregister_object(handle_); }

  dodgr(const dodgr&) = delete;
  dodgr& operator=(const dodgr&) = delete;

  [[nodiscard]] comm::communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] map_type& storage() noexcept { return map_; }
  [[nodiscard]] const map_type& storage() const noexcept { return map_; }
  [[nodiscard]] comm::dist_handle<self> handle() const noexcept { return handle_; }

  [[nodiscard]] int owner(vertex_id v) const noexcept { return map_.owner(v); }

  /// Apply `fn(vertex_id, record&)` to every locally stored vertex.
  template <typename Fn>
  void for_all_local(Fn&& fn) {
    map_.for_all_local(std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    map_.for_all_local(std::forward<Fn>(fn));
  }

  /// The paper's DODGr.visit(v, func, args...): run `Visitor{}` on the rank
  /// that owns `v`, with access to v's record.  No-op when `v` is unknown.
  template <typename Visitor, typename... Args>
  void async_visit(vertex_id v, Visitor visitor, const Args&... args) {
    map_.async_visit_if_exists(v, visitor, args...);
  }

  [[nodiscard]] record_type* local_find(vertex_id v) { return map_.local_find(v); }
  [[nodiscard]] const record_type* local_find(vertex_id v) const {
    return map_.local_find(v);
  }

  /// Compact locator for a known-local record, stable while the graph is
  /// not mutated (the survey engine caches one per source vertex).  For the
  /// map form it is simply the record pointer.
  using record_locator = const record_type*;

  [[nodiscard]] record_locator locate(vertex_id v) const { return map_.local_find(v); }
  [[nodiscard]] const record_type& resolve_record(record_locator loc) const {
    return *loc;
  }

  /// for_all_local with the record's locator supplied alongside, so scans
  /// that cache locators (the survey dry run) pay no per-vertex lookup.
  template <typename Fn>
  void for_all_local_located(Fn&& fn) const {
    map_.for_all_local([&](const vertex_id& v, const record_type& rec) {
      fn(v, rec, &rec);
    });
  }

  [[nodiscard]] std::size_t local_num_vertices() const noexcept {
    return map_.local_size();
  }

  /// Collective: Table 1 columns for this graph.  Cached after first call.
  [[nodiscard]] graph_census census() {
    if (census_valid_) return census_;
    std::uint64_t verts = 0, dir_edges = 0, dmax = 0, dmax_plus = 0, wedges = 0;
    map_.for_all_local([&](const vertex_id&, const record_type& rec) {
      ++verts;
      dir_edges += rec.degree;
      dmax = std::max(dmax, rec.degree);
      dmax_plus = std::max(dmax_plus, rec.out_degree());
      const std::uint64_t dp = rec.out_degree();
      wedges += dp * (dp - 1) / 2;
    });
    census_.num_vertices = comm_->all_reduce_sum(verts);
    census_.num_directed_edges = comm_->all_reduce_sum(dir_edges);
    census_.max_degree = comm_->all_reduce_max(dmax);
    census_.max_out_degree = comm_->all_reduce_max(dmax_plus);
    census_.wedge_checks = comm_->all_reduce_sum(wedges);
    census_valid_ = true;
    return census_;
  }

  void invalidate_census() noexcept { census_valid_ = false; }

  /// Which ordering policy built this graph (set by the builder; the census
  /// `wedge_checks`/`max_out_degree` columns compare orderings directly).
  [[nodiscard]] ordering_policy ordering() const noexcept { return ordering_; }
  void set_ordering(ordering_policy p) noexcept { ordering_ = p; }

 private:
  comm::communicator* comm_;
  map_type map_;
  comm::dist_handle<self> handle_;
  graph_census census_{};
  bool census_valid_ = false;
  ordering_policy ordering_ = ordering_policy::degree;
};

}  // namespace tripoll::graph
