// io.hpp -- distributed edge-list file ingestion and result export.
//
// The paper's pipeline starts from on-disk edge lists (SNAP/WebGraph-style
// "u v" or "u v timestamp" text).  Ingestion is distributed the same way
// real TriPoll/HavoqGT readers work: every rank claims a byte range of the
// file, aligns it to line boundaries, parses its share and feeds the edges
// to the (collective) graph builder, which shuffles them to their owners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "comm/communicator.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// Read-only mapping of a whole file (snapshot loading).  The mapping stays
/// valid while any shared_ptr copy lives, so frozen arenas can view it
/// directly; falls back to an owned read when mmap is unavailable.
class mapped_file {
 public:
  /// Map `path` read-only; throws std::runtime_error when it cannot be
  /// opened or mapped/read.
  [[nodiscard]] static std::shared_ptr<const mapped_file> map(const std::string& path);

  ~mapped_file();
  mapped_file(const mapped_file&) = delete;
  mapped_file& operator=(const mapped_file&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Whether the content is a true mmap (vs the owned-read fallback).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  mapped_file() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* owned_ = nullptr;  // fallback buffer (malloc'd) when !mapped_
};

/// Per-rank file name of a frozen-graph snapshot (shared by the CLI, the
/// snapshot layer and the tests so they always agree).
[[nodiscard]] std::string snapshot_rank_path(const std::string& prefix, int rank);

/// One parsed line of an edge-list file.
struct parsed_edge {
  vertex_id u = 0;
  vertex_id v = 0;
  std::optional<std::uint64_t> weight;  ///< third column when present
};

/// Statistics of one rank's share of an ingestion.
struct ingest_stats {
  std::uint64_t lines = 0;          ///< lines scanned (excluding comments)
  std::uint64_t edges = 0;          ///< well-formed edges parsed
  std::uint64_t malformed = 0;      ///< lines that failed to parse
  std::uint64_t bytes = 0;          ///< bytes this rank consumed
};

/// Parse one line ("u v" or "u v w"; '#' and '%' start comments).
/// Returns std::nullopt for comment/blank lines; throws nothing.
[[nodiscard]] std::optional<parsed_edge> parse_edge_line(std::string_view line,
                                                         bool* malformed);

/// Knobs for this rank's share of an ingestion.
struct ingest_options {
  /// Parser threads for this rank's byte slice.  0 = TRIPOLL_THREADS from
  /// the environment, defaulting to 1 (core::resolve_threads).  The slice
  /// splits into per-thread sub-ranges aligned to line boundaries (the same
  /// ownership rule ranks use, applied recursively), each thread parses its
  /// share into a private shard, and shards drain into the sink in thread
  /// index order -- the edge SEQUENCE is bit-identical to a serial read at
  /// every thread count.
  int threads = 0;
  /// Read through O_DIRECT with aligned staging buffers (page-cache bypass
  /// for cold ingests larger than RAM).  false additionally consults the
  /// TRIPOLL_DIRECT_IO environment variable; where the filesystem rejects
  /// O_DIRECT (tmpfs, many CI runners) reads fall back to the buffered path
  /// transparently -- the parsed bytes are identical either way.
  bool direct_io = false;
};

/// Resolve an options-level direct-IO request: explicit true wins, false
/// consults TRIPOLL_DIRECT_IO (unset/"0" means buffered).
[[nodiscard]] bool resolve_direct_io(bool requested);

/// Collective: read `path`, with rank r of P claiming the r-th byte slice
/// (aligned forward to newline boundaries so each line is parsed exactly
/// once), invoking `sink(parsed_edge)` per edge.  Returns this rank's
/// stats.  Throws std::runtime_error when the file cannot be opened.
ingest_stats read_edge_list(const comm::communicator& c, const std::string& path,
                            const std::function<void(const parsed_edge&)>& sink);

/// As above, with explicit ingestion options (parallel parse, O_DIRECT).
/// The three-argument overload is equivalent to `{.threads = 1}`.
ingest_stats read_edge_list(const comm::communicator& c, const std::string& path,
                            const std::function<void(const parsed_edge&)>& sink,
                            const ingest_options& opts);

/// Rank-0 helper: write an edge list (one "u v [w]" line per call).
class edge_list_writer {
 public:
  explicit edge_list_writer(const std::string& path);
  ~edge_list_writer();

  edge_list_writer(const edge_list_writer&) = delete;
  edge_list_writer& operator=(const edge_list_writer&) = delete;

  void write(vertex_id u, vertex_id v);
  void write(vertex_id u, vertex_id v, std::uint64_t weight);

 private:
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the interface
};

}  // namespace tripoll::graph
