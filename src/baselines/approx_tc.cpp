#include "baselines/approx_tc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "serial/hash.hpp"

namespace tripoll::baselines {

namespace {

using plain_graph = graph::dodgr<graph::none, graph::none>;

struct approx_state {
  plain_graph* g = nullptr;
  std::uint64_t closed = 0;
};

struct closure_probe_handler {
  void operator()(comm::communicator& c, comm::dist_handle<approx_state> h,
                  graph::vertex_id q, graph::vertex_id r, std::uint64_t r_rank) {
    approx_state& st = c.resolve(h);
    const auto* rec = st.g->local_find(q);
    if (rec == nullptr) return;
    const auto key = graph::make_order_key(r, r_rank);
    const auto it = std::lower_bound(
        rec->adj.begin(), rec->adj.end(), key,
        [](const auto& e, const graph::order_key& k) { return e.key() < k; });
    if (it != rec->adj.end() && it->target == r) ++st.closed;
  }
};

[[nodiscard]] double to_unit(std::uint64_t s) noexcept {
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

/// Decode the `index`-th pair (i < j) among C(n, 2) pairs in lexicographic
/// order.
void unrank_pair(std::uint64_t index, std::uint64_t n, std::uint64_t& i,
                 std::uint64_t& j) {
  // Row i holds (n - 1 - i) pairs; walk rows (n is an adjacency length, so
  // this linear walk is bounded by the max out-degree).
  std::uint64_t row = 0;
  std::uint64_t remaining = index;
  while (remaining >= n - 1 - row) {
    remaining -= n - 1 - row;
    ++row;
  }
  i = row;
  j = row + 1 + remaining;
}

}  // namespace

approx_count_result approx_triangle_count(comm::communicator& c, plain_graph& g,
                                          std::uint64_t target_samples,
                                          std::uint64_t seed) {
  approx_state state;
  state.g = &g;
  const auto handle = c.register_object(state);
  c.barrier();
  const auto t0 = std::chrono::steady_clock::now();

  // Local wedge census and cumulative index for weighted vertex sampling.
  std::vector<std::pair<graph::vertex_id, std::uint64_t>> cumulative;  // (v, prefix)
  std::uint64_t local_wedges = 0;
  g.for_all_local([&](const graph::vertex_id& v, const plain_graph::record_type& rec) {
    const std::uint64_t d = rec.out_degree();
    const std::uint64_t w = d >= 2 ? d * (d - 1) / 2 : 0;
    if (w == 0) return;
    local_wedges += w;
    cumulative.emplace_back(v, local_wedges);
  });
  const std::uint64_t total_wedges = c.all_reduce_sum(local_wedges);

  // Each rank draws samples proportional to its wedge share.
  std::uint64_t local_samples = 0;
  if (total_wedges > 0 && local_wedges > 0) {
    local_samples = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(target_samples) *
                     static_cast<double>(local_wedges) /
                     static_cast<double>(total_wedges)));
  }

  std::uint64_t rng = serial::splitmix64(seed ^ (0x5EEDull + static_cast<std::uint64_t>(c.rank())));
  for (std::uint64_t s = 0; s < local_samples; ++s) {
    rng = serial::splitmix64(rng);
    const auto pick =
        static_cast<std::uint64_t>(to_unit(rng) * static_cast<double>(local_wedges));
    const auto it = std::upper_bound(
        cumulative.begin(), cumulative.end(), pick,
        [](std::uint64_t value, const auto& entry) { return value < entry.second; });
    const graph::vertex_id p = it->first;
    const auto* rec = g.local_find(p);
    const std::uint64_t d = rec->out_degree();
    const std::uint64_t wedges_at_p = d * (d - 1) / 2;
    rng = serial::splitmix64(rng);
    const auto windex =
        static_cast<std::uint64_t>(to_unit(rng) * static_cast<double>(wedges_at_p));
    std::uint64_t i = 0, j = 0;
    unrank_pair(windex, d, i, j);
    const auto& q = rec->adj[i];
    const auto& r = rec->adj[j];
    c.async(g.owner(q.target), closure_probe_handler{}, handle, q.target, r.target,
            r.target_rank);
  }
  c.barrier();

  approx_count_result result;
  result.samples = c.all_reduce_sum(local_samples);
  result.closed = c.all_reduce_sum(state.closed);
  result.total_wedges = total_wedges;
  result.estimate = result.samples > 0
                        ? static_cast<double>(total_wedges) *
                              static_cast<double>(result.closed) /
                              static_cast<double>(result.samples)
                        : 0.0;
  result.seconds = c.all_reduce_max(std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count());
  c.deregister_object(handle);
  return result;
}

}  // namespace tripoll::baselines
