// tric_tc.hpp -- TriC-style distributed triangle counting.
//
// Re-implementation of the communication structure of "TriC:
// Distributed-memory Triangle Counting by Exploiting the Graph Structure"
// (Ghosh & Halappanavar, HPEC'20), the 2020 GraphChallenge comparator of
// Table 2: vertices live in *contiguous, edge-balanced* 1D partitions,
// wedge-closure queries to remote owners are collected into one explicit
// batch per destination rank, and batches are exchanged in a bulk
// superstep (TriC's "batch-oriented scalable communication substrate").
//
// The contiguous partitioning is the interesting failure mode: hub vertices
// concentrate in a few ranks, so load imbalance grows with skew -- which is
// why TriC trails the asynchronous approaches on the paper's social graphs.
#pragma once

#include "baselines/pearce_tc.hpp"  // distributed_count_result
#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll::baselines {

/// Collective: TriC-style batched triangle count over `g`.
[[nodiscard]] distributed_count_result tric_triangle_count(
    comm::communicator& c, graph::dodgr<graph::none, graph::none>& g);

}  // namespace tripoll::baselines
