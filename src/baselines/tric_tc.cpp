#include "baselines/tric_tc.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tripoll::baselines {

namespace {

using plain_graph = graph::dodgr<graph::none, graph::none>;

/// (target, target_rank) pair; sorted by the <+ order key for searching.
struct slim_entry {
  graph::vertex_id target = 0;
  std::uint64_t rank = 0;

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(target, rank);
  }
};

/// A batched closure query: does edge (v, w) exist?
struct closure_query {
  graph::vertex_id v = 0;
  graph::vertex_id w = 0;
  std::uint64_t w_rank = 0;
};

struct tric_state {
  std::vector<graph::vertex_id> splits;  ///< contiguous range upper bounds
  std::unordered_map<graph::vertex_id, std::vector<slim_entry>> owned;
  std::uint64_t count = 0;

  [[nodiscard]] int block_owner(graph::vertex_id v) const noexcept {
    const auto it = std::upper_bound(splits.begin(), splits.end(), v);
    return static_cast<int>(std::distance(splits.begin(), it));
  }

  [[nodiscard]] bool closes(graph::vertex_id v, graph::vertex_id w,
                            std::uint64_t w_rank) const {
    const auto it = owned.find(v);
    if (it == owned.end()) return false;
    const auto key = graph::make_order_key(w, w_rank);
    const auto pos = std::lower_bound(
        it->second.begin(), it->second.end(), key,
        [](const slim_entry& e, const graph::order_key& k) { return e.key() < k; });
    return pos != it->second.end() && pos->target == w;
  }
};

struct take_vertex_handler {
  void operator()(comm::communicator& c, comm::dist_handle<tric_state> h,
                  graph::vertex_id u, const std::vector<slim_entry>& adj) {
    c.resolve(h).owned[u] = adj;
  }
};

struct query_batch_handler {
  void operator()(comm::communicator& c, comm::dist_handle<tric_state> h,
                  const std::vector<closure_query>& batch) {
    tric_state& st = c.resolve(h);
    for (const auto& qr : batch) {
      if (st.closes(qr.v, qr.w, qr.w_rank)) ++st.count;
    }
  }
};

constexpr std::size_t kChunks = 4096;

}  // namespace

distributed_count_result tric_triangle_count(comm::communicator& c, plain_graph& g) {
  tric_state state;
  const auto handle = c.register_object(state);
  c.barrier();

  const auto stats_before = c.local_stats();
  c.barrier();
  const auto t0 = std::chrono::steady_clock::now();

  // Phase 0: edge-balanced contiguous partition.  Work per vertex is its
  // out-degree; accumulate per id-range chunk, then cut the chunk prefix sum
  // into nranks equal-weight contiguous ranges (deterministic on all ranks).
  graph::vertex_id local_max_id = 0;
  std::vector<std::uint64_t> chunk_weight(kChunks, 0);
  g.for_all_local([&](const graph::vertex_id& u, const plain_graph::record_type&) {
    local_max_id = std::max(local_max_id, u);
  });
  const graph::vertex_id max_id = c.all_reduce_max(local_max_id);
  const auto chunk_of = [max_id](graph::vertex_id v) {
    return static_cast<std::size_t>((static_cast<unsigned __int128>(v) * kChunks) /
                                    (static_cast<unsigned __int128>(max_id) + 1));
  };
  g.for_all_local([&](const graph::vertex_id& u, const plain_graph::record_type& rec) {
    chunk_weight[chunk_of(u)] += rec.out_degree() + 1;
  });
  const auto gathered = c.all_gather(chunk_weight);
  std::vector<std::uint64_t> total_weight(kChunks, 0);
  std::uint64_t grand_total = 0;
  for (const auto& w : gathered) {
    for (std::size_t i = 0; i < kChunks; ++i) total_weight[i] += w[i];
  }
  for (const auto w : total_weight) grand_total += w;
  state.splits.assign(static_cast<std::size_t>(c.size() - 1), 0);
  {
    std::uint64_t running = 0;
    std::size_t next_cut = 1;
    for (std::size_t i = 0; i < kChunks && next_cut < static_cast<std::size_t>(c.size());
         ++i) {
      running += total_weight[i];
      while (next_cut < static_cast<std::size_t>(c.size()) &&
             running * static_cast<std::uint64_t>(c.size()) >=
                 grand_total * next_cut) {
        // Chunk i's upper id bound becomes the cut point.
        state.splits[next_cut - 1] = static_cast<graph::vertex_id>(
            ((static_cast<unsigned __int128>(i) + 1) *
             (static_cast<unsigned __int128>(max_id) + 1)) / kChunks);
        ++next_cut;
      }
    }
    for (std::size_t s = 0; s < state.splits.size(); ++s) {
      if (state.splits[s] == 0 && s > 0) state.splits[s] = state.splits[s - 1];
    }
  }

  // Phase 1: redistribute adjacency into the contiguous blocks.
  g.for_all_local([&](const graph::vertex_id& u, const plain_graph::record_type& rec) {
    std::vector<slim_entry> slim;
    slim.reserve(rec.adj.size());
    for (const auto& e : rec.adj) slim.push_back(slim_entry{e.target, e.target_rank});
    c.async(state.block_owner(u), take_vertex_handler{}, handle, u, slim);
  });
  c.barrier();

  // Phase 2: enumerate wedges on block owners; batch remote closure queries
  // per destination, then exchange all batches in one superstep.
  std::vector<std::vector<closure_query>> outgoing(static_cast<std::size_t>(c.size()));
  for (const auto& [u, adj] : state.owned) {
    (void)u;
    for (std::size_t i = 0; i + 1 < adj.size(); ++i) {
      const int dest = state.block_owner(adj[i].target);
      for (std::size_t j = i + 1; j < adj.size(); ++j) {
        closure_query qr{adj[i].target, adj[j].target, adj[j].rank};
        if (dest == c.rank()) {
          if (state.closes(qr.v, qr.w, qr.w_rank)) ++state.count;
        } else {
          outgoing[static_cast<std::size_t>(dest)].push_back(qr);
        }
      }
    }
  }
  for (int dest = 0; dest < c.size(); ++dest) {
    auto& batch = outgoing[static_cast<std::size_t>(dest)];
    if (batch.empty()) continue;
    c.async(dest, query_batch_handler{}, handle, batch);
    batch.clear();
    batch.shrink_to_fit();
  }
  c.barrier();

  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  const auto delta = c.local_stats() - stats_before;

  distributed_count_result result;
  result.triangles = c.all_reduce_sum(state.count);
  result.seconds = c.all_reduce_max(elapsed);
  result.volume_bytes = c.all_reduce_sum(delta.remote_bytes);
  result.messages = c.all_reduce_sum(delta.messages_sent);
  c.deregister_object(handle);
  return result;
}

}  // namespace tripoll::baselines
