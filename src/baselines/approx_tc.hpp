// approx_tc.hpp -- wedge-sampling approximate triangle counting.
//
// The paper notes (Sec. 1) that "techniques that approximate triangle
// counts [often] suffice for an application" -- the reason TriPoll's exact,
// metadata-aware processing needs justifying.  This baseline implements the
// standard alternative: sample wedges of the DODGr uniformly, query the
// closing edge, and scale.  Because every triangle closes exactly one DODGr
// wedge, the estimator
//
//     T_hat = |W+| * closed_samples / total_samples
//
// is unbiased, with standard error |W+| * sqrt(p(1-p)/n).
#pragma once

#include <cstdint>

#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll::baselines {

struct approx_count_result {
  double estimate = 0.0;
  std::uint64_t samples = 0;        ///< wedges actually sampled (global)
  std::uint64_t closed = 0;         ///< sampled wedges found closed (global)
  std::uint64_t total_wedges = 0;   ///< |W+|
  double seconds = 0.0;
};

/// Collective: estimate |T| from `target_samples` sampled wedge checks
/// (distributed proportionally to each rank's wedge count).
[[nodiscard]] approx_count_result approx_triangle_count(
    comm::communicator& c, graph::dodgr<graph::none, graph::none>& g,
    std::uint64_t target_samples, std::uint64_t seed = 1);

}  // namespace tripoll::baselines
