// tom2d_tc.hpp -- Tom & Karypis-style 2D distributed triangle counting.
//
// Re-implementation of the communication structure of "A 2D Parallel
// Triangle Counting Algorithm for Distributed-Memory Architectures"
// (Tom & Karypis, ICPP'19), the Table 2 comparator that is fastest on
// mid-size social graphs but, as the paper notes, "requires a number of MPI
// ranks that is a perfect square" and favors throughput over scalability.
//
// The DODGr adjacency matrix L is hash-partitioned into a sqrt(P) x sqrt(P)
// block grid; the triangle count is the masked triple product sum(L.L o L),
// evaluated SUMMA-style: for each inner block index k, block L[i][k] is
// broadcast along grid row i, L[k][j] along grid column j, and rank (i,j)
// joins them against its resident mask block L[i][j].
#pragma once

#include "baselines/pearce_tc.hpp"  // distributed_count_result
#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll::baselines {

/// True when `nranks` is a perfect square (tom2d's precondition).
[[nodiscard]] bool is_perfect_square(int nranks) noexcept;

/// Collective: 2D masked-SpGEMM triangle count.  Throws std::invalid_argument
/// when the communicator size is not a perfect square.
[[nodiscard]] distributed_count_result tom2d_triangle_count(
    comm::communicator& c, graph::dodgr<graph::none, graph::none>& g);

}  // namespace tripoll::baselines
