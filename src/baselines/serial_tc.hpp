// serial_tc.hpp -- exact single-thread triangle counting (ground truth).
//
// A compact-forward / node-iterator counter over a degree-ordered CSR.  It
// uses the same <+ order as the distributed engine, so any disagreement in
// tests points at the code under test rather than at orientation
// conventions.  Also provides the shared-memory OpenMP variant used as a
// single-node performance reference in the benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace tripoll::baselines {

/// Degree-ordered CSR built from a raw undirected edge list (duplicates and
/// self-loops tolerated and removed).  Vertex ids may be sparse.
class ordered_csr {
 public:
  explicit ordered_csr(std::span<const graph::edge> edges);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::uint64_t num_undirected_edges() const noexcept { return num_edges_; }

  /// Out-neighbors (dense ids) of dense vertex `v`, sorted ascending by the
  /// dense <+ rank.
  [[nodiscard]] std::span<const std::uint32_t> out(std::uint32_t v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// Undirected degree of dense vertex `v`.
  [[nodiscard]] std::uint64_t degree(std::uint32_t v) const noexcept {
    return degrees_[v];
  }

  /// Original vertex id of dense vertex `v`.
  [[nodiscard]] graph::vertex_id original_id(std::uint32_t v) const noexcept {
    return original_ids_[v];
  }

  /// Total wedge checks sum_v C(d+(v), 2).
  [[nodiscard]] std::uint64_t wedge_checks() const noexcept;

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> targets_;  ///< dense target ids, ordered by <+ rank
  std::vector<std::uint64_t> degrees_;
  std::vector<graph::vertex_id> original_ids_;
  std::uint64_t num_edges_ = 0;
};

/// Exact triangle count, single thread.
[[nodiscard]] std::uint64_t serial_triangle_count(std::span<const graph::edge> edges);

/// Exact triangle count over a prebuilt CSR (single thread).
[[nodiscard]] std::uint64_t serial_triangle_count(const ordered_csr& csr);

/// Exact triangle count, OpenMP-parallel over vertices (falls back to the
/// serial path when OpenMP is unavailable).
[[nodiscard]] std::uint64_t openmp_triangle_count(const ordered_csr& csr);

}  // namespace tripoll::baselines
