// pearce_tc.hpp -- Pearce-et-al.-style distributed triangle counting.
//
// Re-implementation of the communication pattern of "Triangle counting for
// scale-free graphs at scale in distributed memory" (Pearce, HPEC'17) and
// [41], the comparator the paper beats by ~1.8-6.8x (Table 2): the graph is
// degree-ordered, and every wedge (p; q, r) generates an individual
// asynchronous *query* message to the owner of q asking whether the closing
// edge (q, r) exists.  Contrast with TriPoll, which ships each (p, q)
// adjacency suffix as one batched message: per-wedge querying sends a fixed
// ~25-byte payload per wedge check and cannot exploit suffix aggregation,
// which is exactly the volume gap the comparison measures.
//
// (The original also prunes degree-1 vertices iteratively; at the scales of
// this reproduction that preprocessing does not change the ordering of the
// comparison and is omitted.  See DESIGN.md.)
#pragma once

#include <cstdint>

#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll::baselines {

struct distributed_count_result {
  std::uint64_t triangles = 0;
  double seconds = 0.0;               ///< max over ranks
  std::uint64_t volume_bytes = 0;     ///< remote bytes, global
  std::uint64_t messages = 0;         ///< logical RPCs, global
};

/// Collective: count triangles of `g` with per-wedge closure queries.
[[nodiscard]] distributed_count_result pearce_triangle_count(
    comm::communicator& c, graph::dodgr<graph::none, graph::none>& g);

}  // namespace tripoll::baselines
