#include "baselines/pearce_tc.hpp"

#include <algorithm>
#include <chrono>

namespace tripoll::baselines {

namespace {

using plain_graph = graph::dodgr<graph::none, graph::none>;

/// Rank-local state for one counting run, addressed by handlers.
struct pearce_state {
  plain_graph* g = nullptr;
  std::uint64_t local_count = 0;
};

struct wedge_query_handler {
  void operator()(comm::communicator& c, comm::dist_handle<pearce_state> h,
                  graph::vertex_id q, graph::vertex_id r, std::uint64_t r_rank) {
    pearce_state& st = c.resolve(h);
    const auto* rec = st.g->local_find(q);
    if (rec == nullptr) return;
    const auto key = graph::make_order_key(r, r_rank);
    const auto it = std::lower_bound(
        rec->adj.begin(), rec->adj.end(), key,
        [](const auto& e, const graph::order_key& k) { return e.key() < k; });
    if (it != rec->adj.end() && it->target == r) ++st.local_count;
  }
};

}  // namespace

distributed_count_result pearce_triangle_count(comm::communicator& c,
                                               plain_graph& g) {
  pearce_state state;
  state.g = &g;
  const auto handle = c.register_object(state);
  c.barrier();

  const auto stats_before = c.local_stats();
  c.barrier();
  const auto t0 = std::chrono::steady_clock::now();

  g.for_all_local([&](const graph::vertex_id&, const plain_graph::record_type& rec) {
    // One query per wedge: (q_i, r_j) for every i < j in Adj+(p).
    for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
      const auto& q = rec.adj[i];
      for (std::size_t j = i + 1; j < rec.adj.size(); ++j) {
        const auto& r = rec.adj[j];
        c.async(g.owner(q.target), wedge_query_handler{}, handle, q.target, r.target,
                r.target_rank);
      }
    }
  });
  c.barrier();

  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  const auto delta = c.local_stats() - stats_before;

  distributed_count_result result;
  result.triangles = c.all_reduce_sum(state.local_count);
  result.seconds = c.all_reduce_max(elapsed);
  result.volume_bytes = c.all_reduce_sum(delta.remote_bytes);
  result.messages = c.all_reduce_sum(delta.messages_sent);
  c.deregister_object(handle);
  return result;
}

}  // namespace tripoll::baselines
