#include "baselines/serial_tc.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "core/intersect.hpp"

namespace tripoll::baselines {

ordered_csr::ordered_csr(std::span<const graph::edge> edges) {
  // Normalize: drop self-loops, dedup unordered pairs.
  std::vector<std::pair<graph::vertex_id, graph::vertex_id>> pairs;
  pairs.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  num_edges_ = pairs.size();

  // Dense id assignment.
  std::unordered_map<graph::vertex_id, std::uint32_t> dense;
  dense.reserve(pairs.size() * 2);
  auto densify = [&](graph::vertex_id v) {
    auto [it, inserted] = dense.emplace(v, static_cast<std::uint32_t>(dense.size()));
    if (inserted) original_ids_.push_back(v);
    return it->second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dedges;
  dedges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) dedges.emplace_back(densify(a), densify(b));

  const std::size_t n = dense.size();
  degrees_.assign(n, 0);
  for (const auto& [a, b] : dedges) {
    ++degrees_[a];
    ++degrees_[b];
  }

  // <+ rank: sort dense vertices by (degree, hash(original id), id); the
  // rank of a vertex is its position, so comparing ranks == comparing <+.
  std::vector<std::uint32_t> by_order(n);
  std::iota(by_order.begin(), by_order.end(), 0u);
  std::sort(by_order.begin(), by_order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return graph::make_order_key(original_ids_[x], degrees_[x]) <
           graph::make_order_key(original_ids_[y], degrees_[y]);
  });
  std::vector<std::uint32_t> rank_of(n);
  for (std::uint32_t i = 0; i < n; ++i) rank_of[by_order[i]] = i;

  // Re-index everything by rank so adjacency sorting is plain integer order.
  {
    std::vector<graph::vertex_id> ids(n);
    std::vector<std::uint64_t> degs(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      ids[rank_of[v]] = original_ids_[v];
      degs[rank_of[v]] = degrees_[v];
    }
    original_ids_ = std::move(ids);
    degrees_ = std::move(degs);
  }

  // Orient low-rank -> high-rank; build CSR.
  std::vector<std::size_t> counts(n, 0);
  for (auto& [a, b] : dedges) {
    a = rank_of[a];
    b = rank_of[b];
    if (a > b) std::swap(a, b);
    ++counts[a];
  }
  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + counts[v];
  targets_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : dedges) targets_[cursor[a]++] = b;
  for (std::uint32_t v = 0; v < n; ++v) {
    std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

std::uint64_t ordered_csr::wedge_checks() const noexcept {
  std::uint64_t wedges = 0;
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    const std::uint64_t dp = offsets_[v + 1] - offsets_[v];
    wedges += dp * (dp - 1) / 2;
  }
  return wedges;
}

namespace {

std::uint64_t count_at_vertex(const ordered_csr& csr, std::uint32_t p) {
  const auto adj = csr.out(p);
  std::uint64_t found = 0;
  for (std::size_t i = 0; i + 1 < adj.size(); ++i) {
    const auto q_adj = csr.out(adj[i]);
    core::merge_path_intersect(
        adj.begin() + static_cast<std::ptrdiff_t>(i) + 1, adj.end(), q_adj.begin(),
        q_adj.end(), [](std::uint32_t x) { return x; }, [](std::uint32_t x) { return x; },
        [&](std::uint32_t, std::uint32_t) { ++found; });
  }
  return found;
}

}  // namespace

std::uint64_t serial_triangle_count(const ordered_csr& csr) {
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < csr.num_vertices(); ++p) total += count_at_vertex(csr, p);
  return total;
}

std::uint64_t serial_triangle_count(std::span<const graph::edge> edges) {
  return serial_triangle_count(ordered_csr(edges));
}

std::uint64_t openmp_triangle_count(const ordered_csr& csr) {
  std::uint64_t total = 0;
  const auto n = static_cast<std::int64_t>(csr.num_vertices());
#if defined(TRIPOLL_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : total)
#endif
  for (std::int64_t p = 0; p < n; ++p) {
    total += count_at_vertex(csr, static_cast<std::uint32_t>(p));
  }
  return total;
}

}  // namespace tripoll::baselines
