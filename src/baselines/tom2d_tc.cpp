#include "baselines/tom2d_tc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/intersect.hpp"
#include "serial/hash.hpp"

namespace tripoll::baselines {

namespace {

using plain_graph = graph::dodgr<graph::none, graph::none>;
using block_map = std::unordered_map<graph::vertex_id, std::vector<graph::vertex_id>>;
using block_wire = std::vector<std::pair<graph::vertex_id, std::vector<graph::vertex_id>>>;

constexpr std::uint64_t kGridSalt = 0x71D67FFFEDA60000ULL;

struct tom2d_state {
  int q = 0;  ///< grid side
  block_map mask;     ///< resident block L[i][j], adjacency sorted
  block_map a_block;  ///< L[i][k] received this round
  block_map b_block;  ///< L[k][j] received this round
  std::uint64_t count = 0;
};

[[nodiscard]] int grid_of(graph::vertex_id v, int q) noexcept {
  return static_cast<int>(serial::splitmix64(v ^ kGridSalt) %
                          static_cast<std::uint64_t>(q));
}

struct add_edge_handler {
  void operator()(comm::communicator& c, comm::dist_handle<tom2d_state> h,
                  graph::vertex_id u, graph::vertex_id v) {
    c.resolve(h).mask[u].push_back(v);
  }
};

struct recv_block_handler {
  void operator()(comm::communicator& c, comm::dist_handle<tom2d_state> h,
                  std::uint8_t which, const block_wire& entries) {
    tom2d_state& st = c.resolve(h);
    block_map& dst = which == 0 ? st.a_block : st.b_block;
    for (const auto& [u, vs] : entries) dst[u] = vs;
  }
};

[[nodiscard]] block_wire to_wire(const block_map& block) {
  block_wire wire;
  wire.reserve(block.size());
  for (const auto& [u, vs] : block) wire.emplace_back(u, vs);
  return wire;
}

}  // namespace

bool is_perfect_square(int nranks) noexcept {
  if (nranks <= 0) return false;
  const int root = static_cast<int>(std::lround(std::sqrt(static_cast<double>(nranks))));
  return root * root == nranks;
}

distributed_count_result tom2d_triangle_count(comm::communicator& c, plain_graph& g) {
  if (!is_perfect_square(c.size())) {
    throw std::invalid_argument(
        "tom2d_triangle_count: rank count must be a perfect square");
  }
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(c.size()))));

  tom2d_state state;
  state.q = q;
  const auto handle = c.register_object(state);
  c.barrier();

  const auto stats_before = c.local_stats();
  c.barrier();
  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: hash-partition the DODGr adjacency into the block grid.
  g.for_all_local([&](const graph::vertex_id& u, const plain_graph::record_type& rec) {
    const int row = grid_of(u, q);
    for (const auto& e : rec.adj) {
      const int dest = row * q + grid_of(e.target, q);
      c.async(dest, add_edge_handler{}, handle, u, e.target);
    }
  });
  c.barrier();
  for (auto& [u, vs] : state.mask) std::sort(vs.begin(), vs.end());

  // Phase 2: SUMMA rounds over the inner block index k.
  const int my_row = c.rank() / q;
  const int my_col = c.rank() % q;
  for (int k = 0; k < q; ++k) {
    if (my_col == k) {
      // My block serves as A[i][k]: broadcast along my grid row.
      const auto wire = to_wire(state.mask);
      for (int j = 0; j < q; ++j) {
        c.async(my_row * q + j, recv_block_handler{}, handle, std::uint8_t{0}, wire);
      }
    }
    if (my_row == k) {
      // My block serves as B[k][j]: broadcast along my grid column.
      const auto wire = to_wire(state.mask);
      for (int i = 0; i < q; ++i) {
        c.async(i * q + my_col, recv_block_handler{}, handle, std::uint8_t{1}, wire);
      }
    }
    c.barrier();

    // Masked join: count u -> v -> w paths closed by a resident u -> w edge.
    for (const auto& [u, vs] : state.a_block) {
      const auto mask_it = state.mask.find(u);
      if (mask_it == state.mask.end()) continue;
      const auto& mask_row = mask_it->second;
      for (const auto v : vs) {
        const auto b_it = state.b_block.find(v);
        if (b_it == state.b_block.end()) continue;
        core::merge_path_intersect(
            b_it->second.begin(), b_it->second.end(), mask_row.begin(), mask_row.end(),
            [](graph::vertex_id x) { return x; }, [](graph::vertex_id x) { return x; },
            [&](graph::vertex_id, graph::vertex_id) { ++state.count; });
      }
    }
    state.a_block.clear();
    state.b_block.clear();
    c.barrier();
  }

  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  const auto delta = c.local_stats() - stats_before;

  distributed_count_result result;
  result.triangles = c.all_reduce_sum(state.count);
  result.seconds = c.all_reduce_max(elapsed);
  result.volume_bytes = c.all_reduce_sum(delta.remote_bytes);
  result.messages = c.all_reduce_sum(delta.messages_sent);
  c.deregister_object(handle);
  return result;
}

}  // namespace tripoll::baselines
