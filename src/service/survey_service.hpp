// survey_service.hpp -- the resident survey service (daemon side).
//
// A long-lived, multi-tenant survey daemon over one graph: every rank of a
// TriPoll job loads (typically mmaps) its partition of a frozen snapshot --
// or wraps it in a mutable graph::overlay for streaming deployments -- then
// enters `survey_service::serve()`.  Rank 0 owns the client socket and the
// control plane:
//
//   * every SUBMIT_PLAN is canonicalized (service/protocol.hpp) and first
//     looked up in an LRU cache keyed by (snapshot content id, canonical
//     plan bytes) -- a hit is answered from the cached RESULT bytes with no
//     collective work at all, which is what makes hits ~free;
//   * misses queue in an ADMISSION WINDOW.  When the oldest queued plan has
//     waited `window_ms`, or `max_batch` plans are queued, rank 0
//     broadcasts one `batch_round` carrying the deduplicated union of the
//     queued units and ALL ranks run ONE fused traversal via the existing
//     `survey(g).add_reduced<reduce_scope::global>(...)` machinery;
//   * the globally-reduced per-unit results are sliced back per client in
//     each client's canonical unit order and the serialized bodies are
//     inserted into the cache.
//
// Ranks != 0 block in `communicator::broadcast` between rounds -- the
// collective doubles as the daemon's idle parking spot, so a fused round
// costs exactly one broadcast plus one traversal on every rank.
//
// Unit results are pure functions of (snapshot, unit): each unit
// accumulates independently inside the shared dispatcher callback, so a
// unit's (fires, value) pair is bit-identical whether it ran alone, fused
// with seven strangers, or on a different backend (the acceptance test of
// this subsystem).
//
// Shutdown: SIGTERM/SIGINT (install_signal_handlers) or a SHUTDOWN frame.
// The in-flight traversal, if any, completes normally (the serve loop is
// synchronous), queued-but-unbatched clients are answered with
// ERROR(shutting_down), followers are released with a shutdown round, and
// serve() returns 0.
//
// See docs/SERVICE.md for the operator view.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/survey.hpp"
#include "graph/frozen.hpp"
#include "serial/buffer.hpp"
#include "serial/hash.hpp"
#include "serial/serialize.hpp"
#include "service/endpoint.hpp"
#include "service/protocol.hpp"

namespace tripoll::service {

/// Daemon configuration.
struct service_options {
  std::string endpoint_spec = "unix:/tmp/tripoll-service.sock";
  std::uint64_t window_ms = 5;       ///< admission window (oldest-plan age)
  std::uint64_t max_batch = 8;       ///< fuse at most this many plans per round
  std::uint64_t cache_capacity = 64; ///< LRU entries (0 disables the cache)
  std::uint8_t mode = kModePushPull; ///< traversal mode for every round
  int threads = 0;                   ///< per-rank traversal threads (0: env)
  int poll_ms = 2;                   ///< rank-0 socket poll granularity
  bool install_signals = true;       ///< SIGTERM/SIGINT -> graceful drain
};

// --- graceful-stop flag -----------------------------------------------------

/// Install SIGTERM/SIGINT handlers that set the stop flag (async-signal-safe
/// store only).  Idempotent.
void install_signal_handlers();
/// The handler body; also the test/bench hook for signal-free stop requests.
void request_stop() noexcept;
[[nodiscard]] bool stop_requested() noexcept;
/// Re-arm for another serve() in the same process (bench runs several).
void clear_stop() noexcept;

// --- rank-0 socket core (non-template; service/survey_service.cpp) ----------

/// Listener + connection registry + frame parser + LRU result cache +
/// stats.  Owns no graph and no collectives: everything typed lives in the
/// survey_service template below.  Envelope violations (a header
/// announcing more than kMaxBodyBytes) are answered with ERROR(oversized)
/// and the connection drains and closes without the body ever being read
/// into memory -- the serve loop never sees them.
class service_core {
 public:
  explicit service_core(endpoint ep);
  ~service_core();
  service_core(const service_core&) = delete;
  service_core& operator=(const service_core&) = delete;

  /// Bind + listen (unlinks a stale Unix path first).  Throws on failure.
  void open();
  /// Resolved endpoint ("tcp:host:port" with the bound port).
  [[nodiscard]] std::string where() const;

  struct event {
    std::uint64_t conn = 0;
    std::uint8_t type = 0;
    std::vector<std::byte> body;
  };

  /// Pump accepts, reads and pending writes for up to `timeout_ms`;
  /// returns the complete frames received, in arrival order.
  [[nodiscard]] std::vector<event> poll(int timeout_ms);

  /// Queue one framed reply (header + body) on a connection.
  void send(std::uint64_t conn, frame_type type, const std::byte* body, std::size_t n);
  /// Queue an ERROR reply; counts into stats.rejected.  `close_after`
  /// drains the tx queue and then closes the connection.
  void send_error(std::uint64_t conn, error_code code, const std::string& message,
                  bool close_after = false);

  /// Best-effort drain of every tx queue (bounded by `timeout_ms`).
  void flush(int timeout_ms);
  void close_all();
  [[nodiscard]] std::size_t open_connections() const;

  // LRU cache of serialized RESULT bodies, keyed by canonical_plan_key().
  void cache_configure(std::size_t capacity);
  [[nodiscard]] const std::vector<std::byte>* cache_find(const std::string& key);
  void cache_put(const std::string& key, std::vector<std::byte> body);
  /// Evict every entry whose key does not start with `key_prefix` (the
  /// packed snapshot content id that canonical_plan_key() prepends) and
  /// return how many were dropped.  The invalidation hook: when overlay
  /// ingest or compaction moves the content id between serve() sessions,
  /// everything keyed under the old id can never be hit again.
  std::size_t cache_evict_stale(const std::string& key_prefix);

  service_stats stats;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Pack a body and queue it as one frame.
template <typename... Body>
void send_packed(service_core& core, std::uint64_t conn, frame_type type,
                 const Body&... body) {
  serial::byte_buffer buf;
  if constexpr (sizeof...(Body) > 0) serial::pack(buf, body...);
  core.send(conn, type, buf.data(), buf.size());
}

// --- fused unit runtime -----------------------------------------------------

namespace detail {

/// Per-rank (and per-thread-slice) accumulator of one fused round: one
/// unit_result per unit, in round (canonical) order.  Default-constructed
/// EMPTY -- the reduce treats an empty slice as the identity -- and
/// serializable, which is what reduce_scope::global needs to all_reduce it.
struct units_context {
  std::vector<unit_result> acc;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(acc);
  }
};

/// Stateless fold for units_context slices: elementwise, sum for the
/// counting/digest kinds, max for max_label.  Commutative and associative
/// (u64 wrapping sums), so thread-merge order and the all_reduce fold shape
/// cannot change the result.
struct units_reduce {
  [[nodiscard]] units_context operator()(const units_context& a,
                                         const units_context& b) const {
    if (a.acc.empty()) return b;
    if (b.acc.empty()) return a;
    units_context out = a;
    const std::size_t n = std::min(out.acc.size(), b.acc.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.acc[i].fires += b.acc[i].fires;
      if (out.acc[i].kind == static_cast<std::uint64_t>(unit_kind::max_label)) {
        out.acc[i].value = std::max(out.acc[i].value, b.acc[i].value);
      } else {
        out.acc[i].value += b.acc[i].value;
      }
    }
    return out;
  }
};

/// The ONE callback of a fused round: a runtime dispatcher over the round's
/// unit list.  Fires per discovered triangle, updates every unit's
/// accumulator independently -- each unit's result is therefore independent
/// of the batch composition.  Kinds that read metadata the view does not
/// carry compile to no-ops (if constexpr) and are kept unreachable by
/// validate_request().  No locks, no collectives, no I/O in here: the
/// engine may fire this from worker threads into per-thread slices
/// (docs/THREADING.md, tripoll-callback-blocking).
struct unit_dispatch_callback {
  using vertex_projection = identity_projection;
  using edge_projection = identity_projection;

  std::vector<plan_unit> units;

  template <typename View>
  void operator()(const View& view, units_context& ctx) const {
    if (ctx.acc.size() != units.size()) {  // lazily shape a fresh thread slice
      ctx.acc.assign(units.size(), unit_result{});
      for (std::size_t i = 0; i < units.size(); ++i) {
        ctx.acc[i].kind = units[i].kind;
        ctx.acc[i].param = units[i].param;
      }
    }
    constexpr bool has_emeta =
        std::is_convertible_v<decltype(view.meta_pq), std::uint64_t>;
    constexpr bool has_vmeta =
        std::is_convertible_v<decltype(view.meta_p), std::uint64_t>;
    for (std::size_t i = 0; i < units.size(); ++i) {
      unit_result& acc = ctx.acc[i];
      switch (static_cast<unit_kind>(units[i].kind)) {
        case unit_kind::count:
          ++acc.fires;
          ++acc.value;
          break;
        case unit_kind::hot_count:
          if constexpr (has_emeta) {
            const auto pq = static_cast<std::uint64_t>(view.meta_pq);
            const auto pr = static_cast<std::uint64_t>(view.meta_pr);
            const auto qr = static_cast<std::uint64_t>(view.meta_qr);
            if (std::min({pq, pr, qr}) >= units[i].param) {
              ++acc.fires;
              ++acc.value;
            }
          }
          break;
        case unit_kind::closure_digest:
          if constexpr (has_emeta) {
            const auto pq = static_cast<std::uint64_t>(view.meta_pq);
            const auto pr = static_cast<std::uint64_t>(view.meta_pr);
            const auto qr = static_cast<std::uint64_t>(view.meta_qr);
            const std::uint64_t span = std::max({pq, pr, qr}) - std::min({pq, pr, qr});
            ++acc.fires;
            acc.value += serial::splitmix64(span);  // wrapping, order-free
          }
          break;
        case unit_kind::max_label:
          if constexpr (has_vmeta) {
            const auto p = static_cast<std::uint64_t>(view.meta_p);
            const auto q = static_cast<std::uint64_t>(view.meta_q);
            const auto r = static_cast<std::uint64_t>(view.meta_r);
            ++acc.fires;
            acc.value = std::max({acc.value, p, q, r});
          }
          break;
        case unit_kind::window:
          // Window units only ever run inside a plan.window(t0, t1)
          // traversal (run_units groups them by param), so every firing
          // triangle already has all three edges in-window: plain count.
          ++acc.fires;
          ++acc.value;
          break;
      }
    }
  }
};

/// Number of engine traversals a fused round over `units` runs: one shared
/// by all non-window units (if any) plus one per distinct window param.
/// The leader uses this to advance stats.traversals by what the round
/// actually cost.
[[nodiscard]] inline std::uint64_t round_traversal_count(
    const std::vector<plan_unit>& units) {
  std::uint64_t base = 0;
  std::vector<std::uint64_t> params;
  for (const auto& u : units) {
    if (u.kind == static_cast<std::uint64_t>(unit_kind::window)) {
      if (std::find(params.begin(), params.end(), u.param) == params.end()) {
        params.push_back(u.param);
      }
    } else {
      base = 1;
    }
  }
  return base + params.size();
}

}  // namespace detail

/// Collective: run a fused round over `units` and return the
/// globally-reduced per-unit results (every rank returns the same vector).
/// This is the exact computation a daemon round runs -- tests and the bench
/// call it standalone to produce the bit-identity reference.  All
/// non-window units share ONE traversal; window units run one extra
/// traversal per distinct [t0, t1) param (a window filters at
/// wedge-generation time, so different windows cannot share wedges).
/// `Graph` is anything the survey engine accepts -- a frozen snapshot or a
/// live graph::overlay over one.  `engine_triangles`, when non-null,
/// receives the unwindowed traversal's global cross-check triangle count
/// (0 when the round is window-only).
template <typename Graph>
[[nodiscard]] std::vector<unit_result> run_units(
    Graph& g, const std::vector<plan_unit>& units,
    std::uint8_t mode, int threads, std::uint64_t* engine_triangles = nullptr) {
  survey_options opts;
  opts.mode = mode == kModePushOnly ? survey_mode::push_only : survey_mode::push_pull;
  opts.threads = threads;
  if (engine_triangles != nullptr) *engine_triangles = 0;

  std::vector<plan_unit> base_units;
  std::vector<std::size_t> base_pos;
  std::vector<std::pair<std::uint64_t, std::vector<std::size_t>>> window_groups;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].kind == static_cast<std::uint64_t>(unit_kind::window)) {
      auto it = std::find_if(window_groups.begin(), window_groups.end(),
                             [&](const auto& grp) { return grp.first == units[i].param; });
      if (it == window_groups.end()) {
        window_groups.push_back({units[i].param, {}});
        it = window_groups.end() - 1;
      }
      it->second.push_back(i);
    } else {
      base_units.push_back(units[i]);
      base_pos.push_back(i);
    }
  }

  std::vector<unit_result> out(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    out[i].kind = units[i].kind;
    out[i].param = units[i].param;
  }

  const auto shape = [](detail::units_context& ctx, const std::vector<plan_unit>& us) {
    ctx.acc.assign(us.size(), unit_result{});
    for (std::size_t i = 0; i < us.size(); ++i) {
      ctx.acc[i].kind = us[i].kind;
      ctx.acc[i].param = us[i].param;
    }
  };
  const auto scatter = [&](const detail::units_context& ctx,
                           const std::vector<std::size_t>& pos) {
    for (std::size_t j = 0; j < pos.size(); ++j) out[pos[j]] = ctx.acc[j];
  };

  if (!base_units.empty()) {
    detail::units_context ctx;
    shape(ctx, base_units);
    detail::unit_dispatch_callback cb{base_units};
    bool need_v = false, need_e = false;
    for (const auto& u : base_units) {
      const auto k = static_cast<unit_kind>(u.kind);
      need_e = need_e || k == unit_kind::hot_count || k == unit_kind::closure_digest;
      need_v = need_v || k == unit_kind::max_label;
    }

    // Ship only what the round reads: unread metadata kinds are projected
    // away sender-side (PR 4's wire projections); empty stored metadata makes
    // either choice a zero-byte no-op.
    const auto run_with = [&](auto vproj, auto eproj) {
      return tripoll::survey(g)
          .project_vertex(vproj)
          .project_edge(eproj)
          .template add_reduced<reduce_scope::global>(cb, ctx, detail::units_reduce{})
          .run(opts);
    };
    plan_result<1> res;
    if (need_v && need_e) {
      res = run_with(identity_projection{}, identity_projection{});
    } else if (need_v) {
      res = run_with(identity_projection{}, drop_projection{});
    } else if (need_e) {
      res = run_with(drop_projection{}, identity_projection{});
    } else {
      res = run_with(drop_projection{}, drop_projection{});
    }
    if (engine_triangles != nullptr) *engine_triangles = res.total.triangles_found;
    scatter(ctx, base_pos);
  }

  for (const auto& [param, pos] : window_groups) {
    // validate_request() keeps window units off metadata-free snapshots, so
    // this branch is unreachable there -- but it must still compile, hence
    // the constexpr guard (plan.window static_asserts on the stored type).
    if constexpr (std::is_convertible_v<typename Graph::edge_meta_type,
                                        std::uint64_t>) {
      std::vector<plan_unit> group;
      group.reserve(pos.size());
      for (const auto i : pos) group.push_back(units[i]);
      detail::units_context ctx;
      shape(ctx, group);
      detail::unit_dispatch_callback cb{group};
      // The window reads STORED edge timestamps pre-projection; the view
      // itself needs no metadata, so both kinds are dropped from the wire.
      (void)tripoll::survey(g)
          .project_vertex(drop_projection{})
          .project_edge(drop_projection{})
          .window(window_param_t0(param), window_param_t1(param))
          .template add_reduced<reduce_scope::global>(cb, ctx, detail::units_reduce{})
          .run(opts);
      scatter(ctx, pos);
    }
  }
  return out;
}

/// Collective: the cache-key/STATS snapshot id of the whole loaded graph --
/// rank-position-mixed local content ids summed over ranks, so every rank
/// reports the same value and any changed partition changes it.  Never 0.
/// Overlay mutations advance the local content id (graph/overlay.hpp), so
/// re-evaluating this between serve() sessions detects ingest/compaction.
template <typename Graph>
[[nodiscard]] std::uint64_t global_snapshot_id(Graph& g) {
  auto& c = g.comm();
  const std::uint64_t mixed = serial::splitmix64(
      g.snapshot_id() ^ serial::splitmix64(static_cast<std::uint64_t>(c.rank())));
  const std::uint64_t id = c.all_reduce_sum(mixed);
  return id != 0 ? id : 1;
}

// --- the daemon -------------------------------------------------------------

/// `Graph` is any engine-capable graph: a frozen snapshot (the classic
/// deployment) or a live graph::overlay over one (the streaming
/// deployment).  The daemon may serve() several sessions over its
/// lifetime: the socket core -- listener, connections, LRU cache, stats --
/// persists across sessions, and every serve() re-derives the global
/// snapshot content id, so cache entries keyed under a content id that an
/// overlay ingest / compaction / expiry retired between sessions are
/// evicted on entry and counted in stats.invalidation_evictions.
template <typename Graph>
class survey_service {
 public:
  using graph_type = Graph;
  using vertex_meta_type = typename Graph::vertex_meta_type;
  using edge_meta_type = typename Graph::edge_meta_type;

  survey_service(graph_type& g, service_options opts)
      : g_(&g), opts_(std::move(opts)) {}

  /// Collective: serve until a stop request (signal or SHUTDOWN frame).
  /// Rank 0 runs the socket loop; other ranks park in broadcast and run
  /// their share of each fused round.  Returns the process exit code (0 on
  /// a graceful drain).  Callable again after it returns -- mutate the
  /// overlay between sessions, never during one (followers are parked in a
  /// collective; see docs/STREAMING.md).
  int serve() {
    auto& c = g_->comm();
    const std::uint64_t sid = global_snapshot_id(*g_);
    return c.rank0() ? leader_loop(c, sid) : follower_loop(c);
  }

 private:
  static constexpr std::uint64_t vmeta_bytes() noexcept {
    return std::is_empty_v<vertex_meta_type> ? 0 : sizeof(vertex_meta_type);
  }
  static constexpr std::uint64_t emeta_bytes() noexcept {
    return std::is_empty_v<edge_meta_type> ? 0 : sizeof(edge_meta_type);
  }

  int follower_loop(comm::communicator& c) {
    for (;;) {
      const batch_round round = c.broadcast(batch_round{}, 0);
      if (round.action != 0) break;
      (void)run_units(*g_, round.units, static_cast<std::uint8_t>(round.mode),
                      opts_.threads);
    }
    return 0;
  }

  struct pending_plan {
    std::uint64_t conn = 0;
    plan_request req;  ///< canonical form
    std::string key;   ///< canonical_plan_key(req, sid)
    std::chrono::steady_clock::time_point arrived;
  };

  int leader_loop(comm::communicator& c, std::uint64_t sid) {
    if (!core_) {
      core_ = std::make_unique<service_core>(endpoint::parse(opts_.endpoint_spec));
      core_->cache_configure(opts_.cache_capacity);
      core_->open();
    }
    service_core& core = *core_;
    // Invalidation hook: cache keys are prefixed by the packed snapshot
    // content id.  If the graph mutated since the last session, nothing
    // keyed under the old id can ever be hit again -- evict it now so the
    // LRU holds only servable entries, and surface the count via STATS.
    {
      serial::byte_buffer prefix;
      serial::pack(prefix, sid);
      core.stats.invalidation_evictions += core.cache_evict_stale(std::string(
          reinterpret_cast<const char*>(prefix.data()), prefix.size()));
    }
    core.stats.snapshot_id = sid;
    core.stats.nranks = static_cast<std::uint64_t>(c.size());
    clear_stop();
    if (opts_.install_signals) install_signal_handlers();

    std::vector<pending_plan> pending;
    bool stopping = false;
    while (!stopping) {
      for (auto& e : core.poll(opts_.poll_ms)) {
        handle_event(core, sid, pending, e, stopping);
      }
      if (stop_requested()) stopping = true;
      while (!stopping && !pending.empty()) {
        const bool full = pending.size() >= opts_.max_batch;
        const auto age = std::chrono::steady_clock::now() - pending.front().arrived;
        const bool aged =
            age >= std::chrono::milliseconds(static_cast<long long>(opts_.window_ms));
        if (!full && !aged) break;
        run_batch(c, core, sid, pending);
      }
    }

    // Graceful drain: queued-but-unbatched plans get ERROR(shutting_down),
    // replies flush, followers are released, exit 0.
    for (const auto& p : pending) {
      core.send_error(p.conn, error_code::shutting_down, "daemon is shutting down",
                      /*close_after=*/true);
    }
    pending.clear();
    core.flush(500);
    core.close_all();
    (void)c.broadcast(batch_round{1, 0, {}}, 0);
    return 0;
  }

  void handle_event(service_core& core, std::uint64_t sid,
                    std::vector<pending_plan>& pending, service_core::event& e,
                    bool& stopping) {
    switch (static_cast<frame_type>(e.type)) {
      case frame_type::submit_plan: {
        plan_request req;
        try {
          serial::buffer_reader r(e.body.data(), e.body.size());
          serial::unpack(r, req);
          if (r.remaining() != 0) {
            throw serial::deserialize_error("trailing bytes after plan_request");
          }
        } catch (const std::exception& ex) {
          core.send_error(e.conn, error_code::bad_request,
                          std::string("malformed plan: ") + ex.what());
          return;
        }
        canonicalize(req);
        error_code code = error_code::bad_request;
        const std::string err =
            validate_request(req, vmeta_bytes(), emeta_bytes(), code);
        if (!err.empty()) {
          core.send_error(e.conn, code, err);
          return;
        }
        std::string key = canonical_plan_key(req, sid);
        if (const auto* body = core.cache_find(key)) {
          core.send(e.conn, frame_type::result, body->data(), body->size());
          ++core.stats.plans_served;
          ++core.stats.cache_hits;
          return;
        }
        pending.push_back(pending_plan{e.conn, std::move(req), std::move(key),
                                       std::chrono::steady_clock::now()});
        return;
      }
      case frame_type::stats:
        send_packed(core, e.conn, frame_type::stats, core.stats);
        return;
      case frame_type::shutdown:
        core.send(e.conn, frame_type::shutdown, nullptr, 0);
        stopping = true;
        return;
      default:
        core.send_error(e.conn, error_code::bad_frame,
                        "unknown frame type " + std::to_string(e.type),
                        /*close_after=*/true);
        return;
    }
  }

  void run_batch(comm::communicator& c, service_core& core, std::uint64_t sid,
                 std::vector<pending_plan>& pending) {
    // Fuse at most max_batch of the queued plans per round (max_batch == 1
    // disables fusion entirely); later arrivals stay queued for the next
    // admission window.  The round's unit list is the deduplicated union of
    // every fused plan's units, in canonical order (requests asking for the
    // same unit share one accumulator slot).
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(pending.size(),
                                std::max<std::uint64_t>(opts_.max_batch, 1)));
    std::vector<plan_unit> merged;
    for (std::size_t i = 0; i < take; ++i) {
      merged.insert(merged.end(), pending[i].req.units.begin(),
                    pending[i].req.units.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    (void)c.broadcast(batch_round{0, opts_.mode, merged}, 0);
    std::uint64_t engine_triangles = 0;
    const std::vector<unit_result> results =
        run_units(*g_, merged, opts_.mode, opts_.threads, &engine_triangles);

    for (std::size_t i = 0; i < take; ++i) {
      const auto& p = pending[i];
      // engine_triangles is the UNWINDOWED traversal's cross-check; a
      // window-only plan gets 0 whether or not a co-batched stranger
      // happened to trigger that traversal -- replies must stay pure
      // functions of (snapshot, request), independent of batch makeup.
      const bool has_base = std::any_of(
          p.req.units.begin(), p.req.units.end(), [](const plan_unit& u) {
            return u.kind != static_cast<std::uint64_t>(unit_kind::window);
          });
      plan_response resp;
      resp.snapshot_id = sid;
      resp.engine_triangles = has_base ? engine_triangles : 0;
      resp.units.reserve(p.req.units.size());
      for (const auto& u : p.req.units) {
        const auto it = std::lower_bound(
            merged.begin(), merged.end(), u);  // merged is sorted canonical
        resp.units.push_back(results[static_cast<std::size_t>(it - merged.begin())]);
      }
      serial::byte_buffer body;
      serial::pack(body, resp);
      core.send(p.conn, frame_type::result, body.data(), body.size());
      core.cache_put(p.key, std::vector<std::byte>(body.data(), body.data() + body.size()));
      ++core.stats.plans_served;
      ++core.stats.cache_misses;
    }
    core.stats.traversals += detail::round_traversal_count(merged);
    ++core.stats.batches;
    core.stats.max_batch = std::max<std::uint64_t>(core.stats.max_batch, take);
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(take));
  }

  graph_type* g_;
  service_options opts_;
  std::unique_ptr<service_core> core_;  ///< rank 0 only; outlives serve()
};

}  // namespace tripoll::service
