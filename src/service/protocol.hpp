// protocol.hpp -- wire protocol of the resident survey service.
//
// The service speaks length-prefixed frames over a Unix or TCP stream
// socket, reusing `serial::frame_header` (u32 LE body length + u8 frame
// type) as the envelope and `serial::pack`/`unpack` for every body:
//
//   client -> daemon   SUBMIT_PLAN  plan_request
//                      STATS        (empty body)
//                      SHUTDOWN     (empty body)
//   daemon -> client   RESULT       plan_response
//                      ERROR        error_reply
//                      STATS        service_stats
//                      SHUTDOWN     (empty body: shutdown acknowledged)
//
// One request is in flight per connection at a time: a client writes one
// frame and reads exactly one reply frame.  Bodies are capped at
// `kMaxBodyBytes`; a frame announcing more is answered with
// ERROR(oversized) and the connection is closed without reading the body.
//
// A plan is a list of preset survey units (`plan_unit`) plus projection /
// reduce-scope / traversal-mode fields.  `canonicalize()` rewrites a
// request into the daemon's canonical form -- units sorted and deduplicated,
// parameters of parameterless kinds zeroed, projections reduced to "minimal
// for these units", scope pinned to global -- so that every request wording
// of the same computation shares one cache entry and one fused-batch slot.
// The LRU cache key is (snapshot content id, canonical request bytes); see
// docs/SERVICE.md.
//
// Unit results are pure functions of (snapshot, unit): fires is the global
// number of triangles the unit's callback accepted, value is the unit's
// commutative aggregate.  Both are independent of which other units shared
// the fused traversal, which is what makes fused replies bit-identical to
// sequential ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"
#include "serial/wire_guard.hpp"

namespace tripoll::service {

/// Service frame types (the `type` byte of serial::frame_header).  The
/// range is disjoint from the transport-layer frame types by convention
/// only -- service sockets and transport sockets are never shared.
enum class frame_type : std::uint8_t {
  submit_plan = 0x51,
  result = 0x52,
  error = 0x53,
  stats = 0x54,
  shutdown = 0x55,
};

/// Hard cap on a frame body.  A plan_request is a few hundred bytes and a
/// plan_response tops out at kMaxUnitsPerPlan unit_results; anything larger
/// is a confused or hostile client, refused before the body is read.
inline constexpr std::uint64_t kMaxBodyBytes = 1ull << 20;

/// Cap on units per plan (after canonicalization dedupes repeats).
inline constexpr std::uint64_t kMaxUnitsPerPlan = 64;

/// Preset survey unit kinds the daemon can run.  Every kind maps to a
/// branch of the fused dispatcher callback (service/survey_service.hpp);
/// kinds that read metadata are valid only on snapshots that store it.
enum class unit_kind : std::uint64_t {
  count = 0,           ///< global triangle count (any snapshot)
  hot_count = 1,       ///< triangles whose 3 edge timestamps are all >= param
  closure_digest = 2,  ///< wrapping sum of splitmix64(close span) over triangles
  max_label = 3,       ///< max vertex label seen on any triangle corner
  window = 4,          ///< triangles whose 3 edge timestamps lie in [t0, t1);
                       ///< param packs (t0 << 32) | t1, served via plan.window
};
inline constexpr std::uint64_t kMaxUnitKind = 4;

/// Pack/unpack the window unit's [t0, t1) bounds into its u64 param.  Both
/// bounds must fit in 32 bits (the CLI's deterministic timestamps are
/// < 10^6, far below); the daemon validates nothing beyond the kind's
/// metadata requirement -- an empty or inverted window is a well-formed
/// query whose answer is zero.
[[nodiscard]] constexpr std::uint64_t pack_window_param(std::uint64_t t0,
                                                        std::uint64_t t1) noexcept {
  return (t0 << 32) | (t1 & 0xffffffffull);
}
[[nodiscard]] constexpr std::uint64_t window_param_t0(std::uint64_t param) noexcept {
  return param >> 32;
}
[[nodiscard]] constexpr std::uint64_t window_param_t1(std::uint64_t param) noexcept {
  return param & 0xffffffffull;
}

/// One survey unit: a preset callback id plus its parameter.  `param` is
/// meaningful only for parameterized kinds (hot_count's threshold);
/// canonicalize() zeroes it elsewhere.
struct plan_unit {
  std::uint64_t kind = 0;
  std::uint64_t param = 0;

  friend constexpr bool operator==(const plan_unit&, const plan_unit&) = default;
  friend constexpr auto operator<=>(const plan_unit&, const plan_unit&) = default;
};
TRIPOLL_WIRE_ASSERT(plan_unit, kind, param);

/// Projection / scope / mode wire values of plan_request.  `automatic`
/// means "the minimal projection these units need" -- the canonical form.
inline constexpr std::uint8_t kProjAutomatic = 0;
inline constexpr std::uint8_t kProjIdentity = 1;
inline constexpr std::uint8_t kScopeGlobal = 0;
inline constexpr std::uint8_t kScopeThreads = 1;
inline constexpr std::uint8_t kModeDaemonDefault = 0;
inline constexpr std::uint8_t kModePushPull = 1;
inline constexpr std::uint8_t kModePushOnly = 2;

/// SUBMIT_PLAN body: the serialized plan description.
struct plan_request {
  std::uint8_t mode = kModeDaemonDefault;
  std::uint8_t scope = kScopeGlobal;
  std::uint8_t vertex_proj = kProjAutomatic;
  std::uint8_t edge_proj = kProjAutomatic;
  std::vector<plan_unit> units;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(mode, scope, vertex_proj, edge_proj, units);
  }
};

/// One unit's slice of a RESULT body.
struct unit_result {
  std::uint64_t kind = 0;
  std::uint64_t param = 0;
  std::uint64_t fires = 0;  ///< global triangles accepted by the unit
  std::uint64_t value = 0;  ///< kind-specific commutative aggregate
};
TRIPOLL_WIRE_ASSERT(unit_result, kind, param, fires, value);

/// RESULT body.  Deliberately free of request-coincidence fields (batch
/// size, cache disposition, timings): the body of a cache hit is the byte
/// image of the cold reply, which tests assert.  Cache/batch disposition
/// is observable via STATS instead.
struct plan_response {
  std::uint64_t snapshot_id = 0;        ///< combined over ranks; see service
  std::uint64_t engine_triangles = 0;   ///< unwindowed traversal's global
                                        ///< cross-check count; 0 for a
                                        ///< window-only plan (pure function
                                        ///< of the request, not the batch)
  std::vector<unit_result> units;       ///< canonical unit order

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(snapshot_id, engine_triangles, units);
  }
};

/// ERROR body reason codes.
enum class error_code : std::uint32_t {
  bad_frame = 1,         ///< unknown frame type / malformed envelope
  bad_request = 2,       ///< body failed to deserialize or failed validation
  unsupported_unit = 3,  ///< unit needs metadata this snapshot does not store
  oversized = 4,         ///< body length above kMaxBodyBytes
  shutting_down = 5,     ///< daemon is draining; resubmit elsewhere
};

[[nodiscard]] inline const char* error_code_name(error_code c) noexcept {
  switch (c) {
    case error_code::bad_frame: return "bad_frame";
    case error_code::bad_request: return "bad_request";
    case error_code::unsupported_unit: return "unsupported_unit";
    case error_code::oversized: return "oversized";
    case error_code::shutting_down: return "shutting_down";
  }
  return "unknown";
}

/// ERROR body.
struct error_reply {
  std::uint32_t code = 0;
  std::string message;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(code, message);
  }
};

/// STATS body: monotonic daemon counters.  `plans_served` counts RESULT
/// replies; `cache_hits + cache_misses == plans_served`; `traversals` is
/// the number of fused graph traversals actually run, which cache hits do
/// not advance (the satellite test asserts exactly that).  A batch round
/// runs one traversal for all non-window units plus one per distinct
/// window param -- a window filters at wedge-generation time, so units
/// with different windows cannot share a traversal.
struct service_stats {
  std::uint64_t snapshot_id = 0;
  std::uint64_t nranks = 0;
  std::uint64_t plans_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t traversals = 0;
  std::uint64_t batches = 0;      ///< admission windows that ran a traversal
  std::uint64_t max_batch = 0;    ///< largest number of plans fused at once
  std::uint64_t rejected = 0;     ///< ERROR replies (any code)
  std::uint64_t invalidation_evictions = 0;  ///< cache entries dropped because
                                             ///< the snapshot content id moved
                                             ///< (overlay ingest / compaction)
};
TRIPOLL_WIRE_ASSERT(service_stats, snapshot_id, nranks, plans_served, cache_hits,
                    cache_misses, traversals, batches, max_batch, rejected,
                    invalidation_evictions);

/// Round descriptor rank 0 broadcasts to the other ranks of the daemon:
/// either "run one fused traversal over these units" or "shut down".
/// Internal to the daemon (never crosses the client socket) but defined
/// with the protocol because it shares the plan_unit wire type.
struct batch_round {
  std::uint64_t action = 0;  ///< 0: run units, 1: shut down
  std::uint64_t mode = 0;    ///< kModePushPull / kModePushOnly
  std::vector<plan_unit> units;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(action, mode, units);
  }
};

/// Rewrite `req` into canonical form: units sorted by (kind, param) and
/// deduplicated, parameters of parameterless kinds zeroed, projections set
/// to automatic-minimal, scope pinned to global (the service's results are
/// rank-aggregated by definition) and mode pinned to the daemon default
/// (the traversal mode is daemon-wide configuration; unit results are
/// mode-independent, so honouring a per-request mode would only split the
/// cache).  Two requests describing the same computation canonicalize to
/// identical bytes -- the cache and the batch deduper both key on this.
inline void canonicalize(plan_request& req) {
  for (auto& u : req.units) {
    const bool parameterized =
        u.kind == static_cast<std::uint64_t>(unit_kind::hot_count) ||
        u.kind == static_cast<std::uint64_t>(unit_kind::window);
    if (!parameterized) u.param = 0;
  }
  std::sort(req.units.begin(), req.units.end());
  req.units.erase(std::unique(req.units.begin(), req.units.end()), req.units.end());
  req.scope = kScopeGlobal;
  req.vertex_proj = kProjAutomatic;
  req.edge_proj = kProjAutomatic;
  req.mode = kModeDaemonDefault;
}

/// Canonical plan key bytes: the cache key is this prefixed by the
/// snapshot content id.  `req` must already be canonicalized.
[[nodiscard]] inline std::string canonical_plan_key(const plan_request& req,
                                                   std::uint64_t snapshot_id) {
  serial::byte_buffer buf;
  serial::pack(buf, snapshot_id, req);
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

/// Validate a (canonicalized) request against a snapshot's stored metadata
/// element sizes.  Returns the empty string when servable, else an error
/// message for ERROR(bad_request / unsupported_unit); `code_out` gets the
/// matching reason code.
[[nodiscard]] inline std::string validate_request(const plan_request& req,
                                                 std::uint64_t vmeta_size,
                                                 std::uint64_t emeta_size,
                                                 error_code& code_out) {
  code_out = error_code::bad_request;
  if (req.units.empty()) return "plan has no units";
  if (req.units.size() > kMaxUnitsPerPlan) {
    return "plan has " + std::to_string(req.units.size()) + " units (cap " +
           std::to_string(kMaxUnitsPerPlan) + ")";
  }
  for (const auto& u : req.units) {
    if (u.kind > kMaxUnitKind) {
      return "unknown unit kind " + std::to_string(u.kind);
    }
    const auto k = static_cast<unit_kind>(u.kind);
    const bool needs_emeta = k == unit_kind::hot_count ||
                             k == unit_kind::closure_digest ||
                             k == unit_kind::window;
    const bool needs_vmeta = k == unit_kind::max_label;
    if (needs_emeta && emeta_size != 8) {
      code_out = error_code::unsupported_unit;
      return "unit kind " + std::to_string(u.kind) +
             " needs u64 edge metadata; this snapshot stores " +
             std::to_string(emeta_size) + "-byte edge metadata";
    }
    if (needs_vmeta && vmeta_size != 8) {
      code_out = error_code::unsupported_unit;
      return "unit kind " + std::to_string(u.kind) +
             " needs u64 vertex metadata; this snapshot stores " +
             std::to_string(vmeta_size) + "-byte vertex metadata";
    }
  }
  return std::string();
}

/// Append one framed message (header + packed body) to `out`.
template <typename... Body>
void append_frame(serial::byte_buffer& out, frame_type type, const Body&... body) {
  serial::byte_buffer payload;
  if constexpr (sizeof...(Body) > 0) serial::pack(payload, body...);
  serial::frame_header hdr;
  hdr.body_len = static_cast<std::uint32_t>(payload.size());
  hdr.type = static_cast<std::uint8_t>(type);
  std::byte wire[serial::frame_header::kWireSize];
  hdr.encode(wire);
  out.append(wire, sizeof(wire));
  out.append(payload.data(), payload.size());
}

}  // namespace tripoll::service
