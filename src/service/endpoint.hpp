// endpoint.hpp -- service socket endpoint parsing and dialing.
//
// The resident survey service and its clients address each other with one
// string:
//
//   "unix:/tmp/tripoll.sock"   Unix-domain stream socket at that path
//   "tcp:host:port"            TCP stream socket (host resolved via DNS)
//   "/tmp/tripoll.sock"        bare strings are Unix paths
//
// Definitions live in service/survey_service.cpp; the client-side
// comm/service_client.cpp links against the same parse/dial code so both
// ends agree on the grammar.
#pragma once

#include <cstdint>
#include <string>

namespace tripoll::service {

struct endpoint {
  bool tcp = false;
  std::string host;         ///< tcp only ("" binds all interfaces)
  std::uint16_t port = 0;   ///< tcp only
  std::string path;         ///< unix only

  /// Parse an endpoint spec (throws std::invalid_argument on bad specs).
  [[nodiscard]] static endpoint parse(const std::string& spec);

  /// Human-readable round-trippable form ("unix:..." / "tcp:host:port").
  [[nodiscard]] std::string describe() const;
};

/// Blocking client dial with retry until `timeout_seconds` (the daemon may
/// still be binding).  Returns a connected fd; throws std::runtime_error on
/// timeout or resolution failure.
[[nodiscard]] int dial_endpoint(const endpoint& ep, double timeout_seconds);

}  // namespace tripoll::service
