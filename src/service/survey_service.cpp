// survey_service.cpp -- endpoint grammar, graceful-stop flag and the rank-0
// socket core of the resident survey service.
//
// Everything here is untemplated plumbing: nonblocking listener, per-
// connection frame reassembly, bounded tx queues, the LRU cache of
// serialized RESULT bodies, and the SIGTERM/SIGINT stop flag.  The typed
// serve loop (canonicalization, batching, fused traversals) lives in
// service/survey_service.hpp.

#include "service/survey_service.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace tripoll::service {

namespace {

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string("survey_service: ") + what + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// --- endpoint ---------------------------------------------------------------

endpoint endpoint::parse(const std::string& spec) {
  endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      throw std::invalid_argument("endpoint: tcp spec needs host:port, got '" +
                                  spec + "'");
    }
    ep.tcp = true;
    ep.host = rest.substr(0, colon);
    const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) {
      throw std::invalid_argument("endpoint: bad tcp port in '" + spec + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (ep.path.empty()) {
    throw std::invalid_argument("endpoint: empty unix socket path");
  }
  return ep;
}

std::string endpoint::describe() const {
  if (tcp) return "tcp:" + host + ":" + std::to_string(port);
  return "unix:" + path;
}

int dial_endpoint(const endpoint& ep, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    int fd = -1;
    if (!ep.tcp) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) throw std::runtime_error(errno_text("socket(AF_UNIX)"));
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (ep.path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("dial_endpoint: socket path too long: " + ep.path);
      }
      std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        return fd;
      }
    } else {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
      const std::string port = std::to_string(ep.port);
      if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
          res == nullptr) {
        throw std::runtime_error("dial_endpoint: cannot resolve " + host);
      }
      fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
      const bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
      ::freeaddrinfo(res);
      if (fd < 0) throw std::runtime_error(errno_text("socket(AF_INET)"));
      if (ok) {
        set_nodelay(fd);
        return fd;
      }
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("dial_endpoint: timed out connecting to " +
                               ep.describe());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- graceful-stop flag -----------------------------------------------------

namespace {

std::atomic<bool> g_stop_flag{false};

extern "C" void tripoll_service_stop_handler(int) { request_stop(); }

}  // namespace

void request_stop() noexcept { g_stop_flag.store(true, std::memory_order_release); }
bool stop_requested() noexcept { return g_stop_flag.load(std::memory_order_acquire); }
void clear_stop() noexcept { g_stop_flag.store(false, std::memory_order_release); }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = &tripoll_service_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll() must wake with EINTR
  (void)::sigaction(SIGTERM, &sa, nullptr);
  (void)::sigaction(SIGINT, &sa, nullptr);
  // Writing to a connection the client already abandoned must surface as an
  // EPIPE errno, not kill the daemon.
  (void)::signal(SIGPIPE, SIG_IGN);
}

// --- service_core -----------------------------------------------------------

struct service_core::impl {
  endpoint ep;
  int listen_fd = -1;
  std::uint64_t next_conn = 1;

  struct connection {
    int fd = -1;
    std::vector<std::byte> rx;      ///< unparsed inbound bytes
    std::vector<std::byte> tx;      ///< unsent outbound bytes
    std::size_t tx_off = 0;
    bool close_after_flush = false; ///< stop reading; close once tx drains
  };
  std::unordered_map<std::uint64_t, connection> conns;

  // LRU cache: list front = most recent; map values point into the list.
  struct cache_entry {
    std::string key;
    std::vector<std::byte> body;
  };
  std::size_t cache_capacity = 0;
  std::list<cache_entry> lru;
  std::unordered_map<std::string, std::list<cache_entry>::iterator> cache;

  ~impl() {
    for (auto& [id, conn] : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (!ep.tcp && !ep.path.empty()) ::unlink(ep.path.c_str());
  }

  void flush_tx(connection& conn) {
    while (conn.tx_off < conn.tx.size()) {
      const ssize_t n = ::send(conn.fd, conn.tx.data() + conn.tx_off,
                               conn.tx.size() - conn.tx_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // Peer is gone: drop the queue so close-after-flush can proceed.
      conn.tx_off = conn.tx.size();
      return;
    }
    if (conn.tx_off == conn.tx.size()) {
      conn.tx.clear();
      conn.tx_off = 0;
    }
  }

  /// Read everything available; append complete frames to `events`.
  /// Returns false when the connection should be destroyed.
  bool drain_rx(std::uint64_t id, connection& conn, std::vector<event>& events,
                service_stats& stats) {
    std::byte chunk[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.rx.insert(conn.rx.end(), chunk, chunk + n);
        if (n == static_cast<ssize_t>(sizeof(chunk))) continue;
        break;
      }
      if (n == 0) return false;  // orderly EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t off = 0;
    while (!conn.close_after_flush &&
           conn.rx.size() - off >= serial::frame_header::kWireSize) {
      const auto hdr = serial::frame_header::decode(conn.rx.data() + off);
      if (hdr.body_len > kMaxBodyBytes) {
        // Refuse the envelope without ever buffering the announced body.
        ++stats.rejected;
        append_error(conn, error_code::oversized,
                     "frame body of " + std::to_string(hdr.body_len) +
                         " bytes exceeds the " + std::to_string(kMaxBodyBytes) +
                         "-byte cap");
        conn.close_after_flush = true;
        break;
      }
      const std::size_t total = serial::frame_header::kWireSize + hdr.body_len;
      if (conn.rx.size() - off < total) break;
      event e;
      e.conn = id;
      e.type = hdr.type;
      e.body.assign(conn.rx.begin() + static_cast<std::ptrdiff_t>(
                                          off + serial::frame_header::kWireSize),
                    conn.rx.begin() + static_cast<std::ptrdiff_t>(off + total));
      events.push_back(std::move(e));
      off += total;
    }
    conn.rx.erase(conn.rx.begin(), conn.rx.begin() + static_cast<std::ptrdiff_t>(off));
    return true;
  }

  void append_frame_bytes(connection& conn, frame_type type, const std::byte* body,
                          std::size_t n) {
    serial::frame_header hdr;
    hdr.body_len = static_cast<std::uint32_t>(n);
    hdr.type = static_cast<std::uint8_t>(type);
    std::byte wire[serial::frame_header::kWireSize];
    hdr.encode(wire);
    conn.tx.insert(conn.tx.end(), wire, wire + sizeof(wire));
    if (n > 0) conn.tx.insert(conn.tx.end(), body, body + n);
    flush_tx(conn);
  }

  void append_error(connection& conn, error_code code, const std::string& message) {
    serial::byte_buffer buf;
    serial::pack(buf, error_reply{static_cast<std::uint32_t>(code), message});
    append_frame_bytes(conn, frame_type::error, buf.data(), buf.size());
  }
};

service_core::service_core(endpoint ep) : impl_(std::make_unique<impl>()) {
  impl_->ep = std::move(ep);
}

service_core::~service_core() = default;

void service_core::open() {
  auto& im = *impl_;
  if (!im.ep.tcp) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (im.ep.path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("service_core: socket path too long: " + im.ep.path);
    }
    std::strncpy(addr.sun_path, im.ep.path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(im.ep.path.c_str());
    im.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.listen_fd < 0) throw std::runtime_error(errno_text("socket(AF_UNIX)"));
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error(errno_text(("bind " + im.ep.path).c_str()));
    }
  } else {
    im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (im.listen_fd < 0) throw std::runtime_error(errno_text("socket(AF_INET)"));
    int one = 1;
    (void)::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(im.ep.port);
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error(
          errno_text(("bind :" + std::to_string(im.ep.port)).c_str()));
    }
    if (im.ep.port == 0) {  // kernel-assigned port: read it back
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        im.ep.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(im.listen_fd, 64) != 0) {
    throw std::runtime_error(errno_text("listen"));
  }
  set_nonblocking(im.listen_fd);
}

std::string service_core::where() const { return impl_->ep.describe(); }

std::vector<service_core::event> service_core::poll(int timeout_ms) {
  auto& im = *impl_;
  std::vector<event> events;

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;  // ids[i] maps fds[i + 1] back to its conn
  fds.push_back(pollfd{im.listen_fd, POLLIN, 0});
  for (auto& [id, conn] : im.conns) {
    short want = conn.close_after_flush ? 0 : POLLIN;
    if (conn.tx_off < conn.tx.size()) want |= POLLOUT;
    fds.push_back(pollfd{conn.fd, want, 0});
    ids.push_back(id);
  }

  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    throw std::runtime_error(errno_text("poll"));
  }

  if (rc > 0 && (fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept(im.listen_fd, nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      if (im.ep.tcp) set_nodelay(fd);
      impl::connection conn;
      conn.fd = fd;
      im.conns.emplace(im.next_conn++, std::move(conn));
    }
  }

  std::vector<std::uint64_t> dead;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = im.conns.find(ids[i]);
    if (it == im.conns.end()) continue;
    auto& conn = it->second;
    const short re = fds[i + 1].revents;
    if ((re & POLLOUT) != 0) im.flush_tx(conn);
    if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && !conn.close_after_flush) {
      if (!im.drain_rx(ids[i], conn, events, stats)) {
        dead.push_back(ids[i]);
        continue;
      }
    }
    if (conn.close_after_flush && conn.tx_off >= conn.tx.size()) {
      dead.push_back(ids[i]);
    } else if ((re & (POLLHUP | POLLERR)) != 0 && conn.tx.empty()) {
      dead.push_back(ids[i]);
    }
  }
  for (const auto id : dead) {
    const auto it = im.conns.find(id);
    if (it == im.conns.end()) continue;
    ::close(it->second.fd);
    im.conns.erase(it);
  }
  return events;
}

void service_core::send(std::uint64_t conn_id, frame_type type, const std::byte* body,
                        std::size_t n) {
  const auto it = impl_->conns.find(conn_id);
  if (it == impl_->conns.end()) return;  // client vanished; nothing to answer
  impl_->append_frame_bytes(it->second, type, body, n);
}

void service_core::send_error(std::uint64_t conn_id, error_code code,
                              const std::string& message, bool close_after) {
  const auto it = impl_->conns.find(conn_id);
  if (it == impl_->conns.end()) return;
  ++stats.rejected;
  impl_->append_error(it->second, code, message);
  if (close_after) it->second.close_after_flush = true;
}

void service_core::flush(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool pending = false;
    for (auto& [id, conn] : impl_->conns) {
      impl_->flush_tx(conn);
      pending = pending || conn.tx_off < conn.tx.size();
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void service_core::close_all() {
  for (auto& [id, conn] : impl_->conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  impl_->conns.clear();
}

std::size_t service_core::open_connections() const { return impl_->conns.size(); }

void service_core::cache_configure(std::size_t capacity) {
  impl_->cache_capacity = capacity;
  while (impl_->lru.size() > capacity) {
    impl_->cache.erase(impl_->lru.back().key);
    impl_->lru.pop_back();
  }
}

const std::vector<std::byte>* service_core::cache_find(const std::string& key) {
  auto& im = *impl_;
  const auto it = im.cache.find(key);
  if (it == im.cache.end()) return nullptr;
  im.lru.splice(im.lru.begin(), im.lru, it->second);  // touch: move to front
  return &it->second->body;
}

std::size_t service_core::cache_evict_stale(const std::string& key_prefix) {
  auto& im = *impl_;
  std::size_t evicted = 0;
  for (auto it = im.lru.begin(); it != im.lru.end();) {
    const bool fresh = it->key.size() >= key_prefix.size() &&
                       it->key.compare(0, key_prefix.size(), key_prefix) == 0;
    if (fresh) {
      ++it;
      continue;
    }
    im.cache.erase(it->key);
    it = im.lru.erase(it);
    ++evicted;
  }
  return evicted;
}

void service_core::cache_put(const std::string& key, std::vector<std::byte> body) {
  auto& im = *impl_;
  if (im.cache_capacity == 0) return;
  const auto it = im.cache.find(key);
  if (it != im.cache.end()) {
    it->second->body = std::move(body);
    im.lru.splice(im.lru.begin(), im.lru, it->second);
    return;
  }
  im.lru.push_front(impl::cache_entry{key, std::move(body)});
  im.cache.emplace(key, im.lru.begin());
  while (im.lru.size() > im.cache_capacity) {
    im.cache.erase(im.lru.back().key);
    im.lru.pop_back();
  }
}

}  // namespace tripoll::service
