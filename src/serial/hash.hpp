// hash.hpp -- deterministic hashing shared by all ranks.
//
// The paper's `<+` vertex ordering breaks degree ties with a deterministic
// hash, and vertex ownership is a hash of the vertex id.  std::hash makes no
// cross-process determinism promises, so TriPoll uses an explicit splitmix64
// finalizer everywhere an ordering or ownership decision must agree across
// ranks.
#pragma once

#include <cstdint>
#include <string_view>

namespace tripoll::serial {

/// splitmix64 finalizer: a strong 64-bit mixer, deterministic everywhere.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a for strings (FQDN metadata keys, counting-set keys).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// boost-style combiner for composite keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (splitmix64(v) + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace tripoll::serial
