// buffer.hpp -- flat byte buffer, size-tiered buffer pool, bounds-checked reader.
//
// This is the lowest layer of the cereal stand-in used by the simulated
// distributed runtime: every RPC payload is serialized into a byte_buffer,
// handed to the transport as an opaque blob, and re-read on the destination
// rank through a buffer_reader.
//
// The buffer is deliberately NOT a std::vector<std::byte>: the hot path
// appends millions of small records per second and never reads storage it
// did not write, so growth leaves new capacity uninitialized (a vector
// value-initializes on resize/insert) and append compiles down to a
// bounds check plus memcpy.  Storage blocks are recycled through
// buffer_pool so steady-state traffic performs no allocations at all.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>
#include <utility>

namespace tripoll::serial {

/// Error thrown when a reader runs past the end of its buffer or a size
/// prefix is inconsistent with the remaining bytes.  Deserialization errors
/// are programming errors in matched serialize/deserialize pairs, but they
/// can also arise from corrupted transport buffers, so they are exceptions
/// rather than asserts.
class deserialize_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Growable, append-only byte sink backed by a flat heap block with
/// uninitialized growth.  All typed encoding lives in serialize.hpp.
/// Move-only: payloads are handed to the transport by move and recycled
/// through buffer_pool, never copied.
class byte_buffer {
 public:
  byte_buffer() = default;

  explicit byte_buffer(std::size_t reserve_bytes) { reserve(reserve_bytes); }

  byte_buffer(byte_buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  byte_buffer& operator=(byte_buffer&& other) noexcept {
    if (this != &other) {
      delete[] data_;
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  byte_buffer(const byte_buffer&) = delete;
  byte_buffer& operator=(const byte_buffer&) = delete;

  ~byte_buffer() { delete[] data_; }

  /// Append `n` raw bytes from `src`.
  void append(const void* src, std::size_t n) {
    if (n == 0) return;  // empty containers hand in src == nullptr; memcpy
                         // forbids null even with n == 0
    if (size_ + n > capacity_) [[unlikely]] grow(size_ + n);
    std::memcpy(data_ + size_, src, n);
    size_ += n;
  }

  /// Append the contents of another buffer.
  void append(const byte_buffer& other) { append(other.data(), other.size()); }

  /// Reserve `n` writable bytes past the current end and return a pointer to
  /// them; the caller fills them and the size is already accounted.
  [[nodiscard]] std::byte* append_raw(std::size_t n) {
    if (size_ + n > capacity_) [[unlikely]] grow(size_ + n);
    std::byte* out = data_ + size_;
    size_ += n;
    return out;
  }

  /// Two-phase append for writers that know an upper bound but not the
  /// exact size (varints): prepare() guarantees `max_n` writable bytes past
  /// the end and returns the write cursor; commit() accounts the bytes
  /// actually written.
  [[nodiscard]] std::byte* prepare(std::size_t max_n) {
    if (size_ + max_n > capacity_) [[unlikely]] grow(size_ + max_n);
    return data_ + size_;
  }

  void commit(std::size_t n) noexcept { size_ += n; }

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  [[nodiscard]] std::span<const std::byte> view() const noexcept {
    return {data_, size_};
  }

  /// Move the contents out (used by the transport to enqueue a flushed
  /// buffer without copying); this buffer is left empty with no storage.
  [[nodiscard]] byte_buffer release() noexcept { return std::move(*this); }

  /// Adopt another buffer's storage (recycled from a pool); existing
  /// contents are discarded.
  void adopt(byte_buffer other) noexcept { *this = std::move(other); }

 private:
  void grow(std::size_t min_capacity) {
    std::size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
    if (new_capacity < min_capacity) new_capacity = min_capacity;
    // Uninitialized storage: everything below size_ is copied over, and the
    // buffer never exposes bytes past size_.
    auto* fresh = new std::byte[new_capacity];
    if (size_ != 0) std::memcpy(fresh, data_, size_);
    delete[] data_;
    data_ = fresh;
    capacity_ = new_capacity;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Size-tiered freelist of byte_buffer storage blocks.  Tier i holds
/// buffers with capacity in [2^(kMinTierLog2+i), 2^(kMinTierLog2+i+1));
/// acquire() rounds the request up to a tier so recycled blocks are
/// interchangeable within their class.  Not thread-safe: each rank owns a
/// pool, and buffers flushed to another rank are recycled into the
/// *receiver's* pool after draining (pools redistribute storage across
/// ranks instead of returning it to the allocator).
class buffer_pool {
 public:
  static constexpr std::size_t kMinTierLog2 = 9;   // 512 B
  static constexpr std::size_t kMaxTierLog2 = 21;  // 2 MiB
  static constexpr std::size_t kTiers = kMaxTierLog2 - kMinTierLog2 + 1;

  explicit buffer_pool(std::size_t max_per_tier = 16) noexcept
      : max_per_tier_(max_per_tier < kShelfSlots ? max_per_tier : kShelfSlots) {}

  /// A buffer with capacity >= min_bytes: recycled when the tier has one
  /// big enough, freshly allocated otherwise.  Requests above the top tier
  /// class are honored at their exact size (and such blocks are simply not
  /// pooled on recycle).
  [[nodiscard]] byte_buffer acquire(std::size_t min_bytes) {
    const std::size_t tier = tier_for(min_bytes);
    auto& shelf = tiers_[tier];
    if (shelf.count > 0 && shelf.slots[shelf.count - 1].capacity() >= min_bytes) {
      ++hits_;
      byte_buffer out = std::move(shelf.slots[--shelf.count]);
      out.clear();
      return out;
    }
    ++misses_;
    const std::size_t class_bytes = std::size_t{1} << (kMinTierLog2 + tier);
    return byte_buffer(class_bytes < min_bytes ? min_bytes : class_bytes);
  }

  /// Return a storage block to its tier; oversize/undersize blocks and full
  /// tiers simply drop the block (freed by ~byte_buffer).
  void recycle(byte_buffer buf) noexcept {
    const std::size_t cap = buf.capacity();
    if (cap < (std::size_t{1} << kMinTierLog2) ||
        cap > (std::size_t{1} << (kMaxTierLog2 + 1))) {
      return;
    }
    // A block is reusable for every request of its tier or below; file it
    // under the largest tier whose class size it satisfies.
    std::size_t tier = 0;
    while (tier + 1 < kTiers && (std::size_t{1} << (kMinTierLog2 + tier + 1)) <= cap) {
      ++tier;
    }
    auto& shelf = tiers_[tier];
    if (shelf.count >= max_per_tier_ || shelf.count >= kShelfSlots) return;
    buf.clear();
    shelf.slots[shelf.count++] = std::move(buf);
    ++recycled_;
  }

  /// Hand `buf` a recycled storage block if one is on the shelf; leaves it
  /// untouched (empty, unallocated) when the pool has nothing -- the buffer
  /// then grows lazily on first append.
  void try_reuse(byte_buffer& buf, std::size_t want_bytes) {
    const std::size_t tier = tier_for(want_bytes);
    auto& shelf = tiers_[tier];
    if (shelf.count == 0 || shelf.slots[shelf.count - 1].capacity() < want_bytes) {
      // The caller's buffer will allocate lazily instead -- that deferred
      // allocation is this miss.
      ++misses_;
      return;
    }
    ++hits_;
    buf.adopt(std::move(shelf.slots[--shelf.count]));
    buf.clear();
  }

  // Pool telemetry (tests and the pool microbench).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }

  [[nodiscard]] std::size_t pooled_count() const noexcept {
    std::size_t n = 0;
    for (const auto& shelf : tiers_) n += shelf.count;
    return n;
  }

 private:
  static constexpr std::size_t kShelfSlots = 64;

  struct shelf_t {
    std::array<byte_buffer, kShelfSlots> slots;
    std::size_t count = 0;
  };

  [[nodiscard]] static std::size_t tier_for(std::size_t bytes) noexcept {
    std::size_t tier = 0;
    while (tier < kTiers - 1 && (std::size_t{1} << (kMinTierLog2 + tier)) < bytes) {
      ++tier;
    }
    return tier;
  }

  std::array<shelf_t, kTiers> tiers_{};
  std::size_t max_per_tier_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t recycled_ = 0;
};

// ---------------------------------------------------------------------------
// Wire framing (socket transport).
// ---------------------------------------------------------------------------

/// Length-prefixed frame header used by stream transports: 4-byte
/// little-endian body length, 1-byte frame type, 3 reserved bytes.  The
/// fixed 8-byte size keeps the header a single read/write and leaves the
/// body 8-byte aligned when the header lands on an aligned boundary.
/// The header is encoded byte-by-byte below (never memcpy'd), so its
/// in-memory padding is irrelevant.  // tripoll-lint: not-wire
struct frame_header {
  static constexpr std::size_t kWireSize = 8;

  std::uint32_t body_len = 0;
  std::uint8_t type = 0;

  void encode(std::byte out[kWireSize]) const noexcept {
    out[0] = static_cast<std::byte>(body_len & 0xFF);
    out[1] = static_cast<std::byte>((body_len >> 8) & 0xFF);
    out[2] = static_cast<std::byte>((body_len >> 16) & 0xFF);
    out[3] = static_cast<std::byte>((body_len >> 24) & 0xFF);
    out[4] = static_cast<std::byte>(type);
    out[5] = out[6] = out[7] = std::byte{0};
  }

  [[nodiscard]] static frame_header decode(const std::byte in[kWireSize]) noexcept {
    frame_header h;
    h.body_len = static_cast<std::uint32_t>(in[0]) |
                 (static_cast<std::uint32_t>(in[1]) << 8) |
                 (static_cast<std::uint32_t>(in[2]) << 16) |
                 (static_cast<std::uint32_t>(in[3]) << 24);
    h.type = static_cast<std::uint8_t>(in[4]);
    return h;
  }
};

/// Little-endian fixed-width u64 helpers for control-frame bodies (control
/// frames use fixed offsets, not varints, so they can be parsed without a
/// reader).
inline void store_u64_le(std::byte* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

[[nodiscard]] inline std::uint64_t load_u64_le(const std::byte* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

/// Bounds-checked sequential reader over a span of bytes.  The reader does
/// not own the storage; callers must keep the underlying buffer alive.
class buffer_reader {
 public:
  buffer_reader() = default;

  explicit buffer_reader(std::span<const std::byte> bytes) noexcept : bytes_(bytes) {}

  buffer_reader(const void* data, std::size_t n) noexcept
      : bytes_(static_cast<const std::byte*>(data), n) {}

  /// Copy `n` bytes into `dst`, advancing the cursor.
  void read(void* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  /// Return a view of the next `n` bytes and advance past them.
  [[nodiscard]] std::span<const std::byte> take(std::size_t n) {
    require(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Raw cursor + advance for decoders (varint) that scan ahead themselves;
  /// callers must stay within remaining() and advance what they consumed.
  [[nodiscard]] const std::byte* cursor() const noexcept { return bytes_.data() + pos_; }
  void advance(std::size_t n) noexcept { pos_ += n; }

 private:
  void require(std::size_t n) const {
    if (n > remaining()) {
      throw deserialize_error("buffer_reader: read past end of buffer");
    }
  }

  std::span<const std::byte> bytes_{};
  std::size_t pos_ = 0;
};

}  // namespace tripoll::serial
