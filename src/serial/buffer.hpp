// buffer.hpp -- growable byte buffer plus bounds-checked reader.
//
// This is the lowest layer of the cereal stand-in used by the simulated
// distributed runtime: every RPC payload is serialized into a byte_buffer,
// handed to the transport as an opaque blob, and re-read on the destination
// rank through a buffer_reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace tripoll::serial {

/// Error thrown when a reader runs past the end of its buffer or a size
/// prefix is inconsistent with the remaining bytes.  Deserialization errors
/// are programming errors in matched serialize/deserialize pairs, but they
/// can also arise from corrupted transport buffers, so they are exceptions
/// rather than asserts.
class deserialize_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Growable, append-only byte sink.  A thin wrapper over std::vector<std::byte>
/// with raw-memory append primitives; all typed encoding lives in
/// serialize.hpp.
class byte_buffer {
 public:
  byte_buffer() = default;

  explicit byte_buffer(std::size_t reserve_bytes) { bytes_.reserve(reserve_bytes); }

  /// Append `n` raw bytes from `src`.
  void append(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  /// Append the contents of another buffer.
  void append(const byte_buffer& other) { append(other.data(), other.size()); }

  [[nodiscard]] const std::byte* data() const noexcept { return bytes_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }

  void clear() noexcept { bytes_.clear(); }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  [[nodiscard]] std::span<const std::byte> view() const noexcept {
    return {bytes_.data(), bytes_.size()};
  }

  /// Move the underlying storage out (used by the transport to enqueue a
  /// flushed buffer without copying).
  [[nodiscard]] std::vector<std::byte> release() noexcept { return std::move(bytes_); }

  /// Adopt externally produced storage.
  void adopt(std::vector<std::byte> bytes) noexcept { bytes_ = std::move(bytes); }

 private:
  std::vector<std::byte> bytes_;
};

/// Bounds-checked sequential reader over a span of bytes.  The reader does
/// not own the storage; callers must keep the underlying buffer alive.
class buffer_reader {
 public:
  buffer_reader() = default;

  explicit buffer_reader(std::span<const std::byte> bytes) noexcept : bytes_(bytes) {}

  buffer_reader(const void* data, std::size_t n) noexcept
      : bytes_(static_cast<const std::byte*>(data), n) {}

  /// Copy `n` bytes into `dst`, advancing the cursor.
  void read(void* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  /// Return a view of the next `n` bytes and advance past them.
  [[nodiscard]] std::span<const std::byte> take(std::size_t n) {
    require(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const {
    if (n > remaining()) {
      throw deserialize_error("buffer_reader: read past end of buffer");
    }
  }

  std::span<const std::byte> bytes_{};
  std::size_t pos_ = 0;
};

}  // namespace tripoll::serial
