// serialize.hpp -- archive-style serialization of C++ values (cereal stand-in).
//
// TriPoll's RPC layer sends arbitrary user types between ranks: metadata can
// be labels, timestamps, strings or whole containers.  Following the paper
// (Sec. 4.1.2), structured message contents are serialized into
// variable-length byte arrays, concatenated into transport buffers, and
// deserialized back on the destination rank.
//
// Supported out of the box:
//   * trivially copyable types (integers, floats, enums, simple structs)
//   * std::string / std::string_view (write side)
//   * std::vector, std::array, std::pair, std::tuple, std::optional
//   * std::map / std::unordered_map / std::set / std::unordered_set
//   * any user type exposing `void serialize(Archive&)` applied to both
//     a writer archive and a reader archive (cereal-style single function)
//
// Sizes are varint-encoded, so small containers cost one length byte.
#pragma once

#include <array>
#include <compare>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serial/buffer.hpp"

namespace tripoll::serial {

class writer;
class reader;

/// Upper bound of one encoded varint: 64 bits / 7 bits-per-byte, rounded up.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Encode `v` as LEB128 into `out` (which must hold kMaxVarintBytes);
/// returns the number of bytes written.  The raw-buffer twin of
/// writer::write_varint, shared with the snapshot column codecs
/// (graph/snapshot.hpp) that encode outside an archive.
[[nodiscard]] inline std::size_t varint_encode(std::byte* out, std::uint64_t v) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::byte>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out[n++] = static_cast<std::byte>(v);
  return n;
}

/// Decode one LEB128 varint from [p, end), advancing `p` past it.  Throws
/// deserialize_error on truncation or a continuation chain past 64 bits.
[[nodiscard]] inline std::uint64_t varint_decode(const std::byte*& p, const std::byte* end) {
  std::uint64_t v = 0;
  int shift = 0;
  const std::byte* q = p;
  while (q != end) {
    const auto byte = static_cast<std::uint8_t>(*q++);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      p = q;
      return v;
    }
    shift += 7;
    if (shift >= 64) throw deserialize_error("varint too long");
  }
  throw deserialize_error("varint: read past end of buffer");
}

/// ZigZag-map a signed delta onto the unsigned varint domain so small
/// negative values stay short (-1 -> 1, 1 -> 2, ...).  Columns sorted by
/// the <+ order key -- not by raw id -- produce deltas of either sign, so
/// the snapshot delta codecs always go through this mapping.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

namespace detail {

/// Opt-out marker: a trivially copyable type whose wire format must go
/// through its serialize() member declares
/// `static constexpr bool tripoll_force_member_serialize = true;`.
/// The canonical case is a struct holding a std::string_view: the struct is
/// memcpy-able, but the view's interior pointer is meaningless on the
/// destination rank -- the archive path re-points it into the received
/// payload instead.
template <typename T>
concept forced_member_serialize = requires {
  { T::tripoll_force_member_serialize } -> std::convertible_to<bool>;
} && T::tripoll_force_member_serialize;

/// A type is bitwise-serializable when memcpy round-trips it.  Pointers are
/// excluded: addresses are meaningless on another rank even in a simulated
/// runtime, and catching them at compile time avoids an entire bug class.
/// std::string_view is excluded for the same reason (it is trivially
/// copyable but carries a pointer); it serializes through its dedicated
/// traits specialization as length + bytes.
template <typename T>
concept bitwise = std::is_trivially_copyable_v<T> && !std::is_pointer_v<T> &&
                  !std::is_same_v<T, std::string_view> && !forced_member_serialize<T>;

/// Random-access iterator that materializes T values out of a raw
/// (possibly unaligned -- payload fields sit behind varints) byte stream
/// via memcpy.  Lets vector::assign copy-construct elements straight from
/// wire bytes with no value-initialization pass and no aliasing/alignment
/// UB; compilers collapse the per-element memcpy into a vectorized copy.
template <typename T>
class raw_read_iterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = const T*;
  using reference = T;

  raw_read_iterator() = default;
  explicit raw_read_iterator(const std::byte* p) noexcept : p_(p) {}

  [[nodiscard]] T operator*() const noexcept {
    T t;
    std::memcpy(&t, p_, sizeof(T));
    return t;
  }

  [[nodiscard]] T operator[](difference_type n) const noexcept { return *(*this + n); }

  raw_read_iterator& operator++() noexcept { p_ += sizeof(T); return *this; }
  raw_read_iterator operator++(int) noexcept { auto t = *this; ++*this; return t; }
  raw_read_iterator& operator--() noexcept { p_ -= sizeof(T); return *this; }
  raw_read_iterator operator--(int) noexcept { auto t = *this; --*this; return t; }
  raw_read_iterator& operator+=(difference_type n) noexcept {
    p_ += n * static_cast<difference_type>(sizeof(T));
    return *this;
  }
  raw_read_iterator& operator-=(difference_type n) noexcept { return *this += -n; }
  [[nodiscard]] raw_read_iterator operator+(difference_type n) const noexcept {
    auto t = *this;
    return t += n;
  }
  [[nodiscard]] friend raw_read_iterator operator+(difference_type n,
                                                   raw_read_iterator it) noexcept {
    return it + n;
  }
  [[nodiscard]] raw_read_iterator operator-(difference_type n) const noexcept {
    auto t = *this;
    return t -= n;
  }
  [[nodiscard]] difference_type operator-(raw_read_iterator o) const noexcept {
    return (p_ - o.p_) / static_cast<difference_type>(sizeof(T));
  }
  [[nodiscard]] bool operator==(const raw_read_iterator&) const = default;
  [[nodiscard]] auto operator<=>(const raw_read_iterator&) const = default;

 private:
  const std::byte* p_ = nullptr;
};

// The by-value reference means the Cpp17 random-access tag is a pragmatic
// overstatement (Cpp17ForwardIterator wants a true reference), advertised so
// vector::assign precomputes the distance and allocates once on mainstream
// standard libraries; the C++20 iterator concept is genuinely satisfied.
static_assert(std::random_access_iterator<raw_read_iterator<std::uint64_t>>);

template <typename T>
concept has_member_serialize_w =
    requires(T& t, writer& a) { t.serialize(a); };

template <typename T>
concept has_member_serialize_r =
    requires(T& t, reader& a) { t.serialize(a); };

}  // namespace detail

/// Writer archive: `archive(a, b, c)` appends each value to the buffer.
class writer {
 public:
  explicit writer(byte_buffer& sink) noexcept : sink_(&sink) {}

  template <typename... Ts>
  void operator()(const Ts&... values) {
    (write_one(values), ...);
  }

  /// Varint (LEB128) encoding for sizes; small values take one byte.
  /// Bytes are stored straight into the sink through prepare()/commit():
  /// one capacity check per varint, no intermediate copies.
  void write_varint(std::uint64_t v) {
    std::byte* out = sink_->prepare(kMaxVarintBytes);
    sink_->commit(varint_encode(out, v));
  }

  void write_raw(const void* data, std::size_t n) { sink_->append(data, n); }

  [[nodiscard]] byte_buffer& sink() noexcept { return *sink_; }

 private:
  template <typename T>
  void write_one(const T& value);

  byte_buffer* sink_;
};

/// Reader archive: `archive(a, b, c)` fills each value from the buffer.
class reader {
 public:
  explicit reader(buffer_reader& source) noexcept : source_(&source) {}

  template <typename... Ts>
  void operator()(Ts&... values) {
    (read_one(values), ...);
  }

  /// Varint decode against the raw cursor: one bounds condition on the
  /// bytes remaining instead of a checked single-byte read per byte.
  [[nodiscard]] std::uint64_t read_varint() {
    const std::byte* p = source_->cursor();
    const std::byte* const begin = p;
    const std::uint64_t v = varint_decode(p, begin + source_->remaining());
    source_->advance(static_cast<std::size_t>(p - begin));
    return v;
  }

  void read_raw(void* dst, std::size_t n) { source_->read(dst, n); }

  [[nodiscard]] buffer_reader& source() noexcept { return *source_; }

 private:
  template <typename T>
  void read_one(T& value);

  buffer_reader* source_;
};

// ---------------------------------------------------------------------------
// serialize_traits: one specialization per supported family.  The primary
// template handles bitwise types and user types with member serialize().
// ---------------------------------------------------------------------------

template <typename T, typename Enable = void>
struct serialize_traits {
  static void write(writer& ar, const T& v) {
    if constexpr (std::is_empty_v<T>) {
      // Stateless types occupy zero wire bytes.  Never memcpy through the
      // address of an empty object: inside std::tuple, empty-base
      // optimization can alias it with a *different* element's storage.
      (void)ar;
      (void)v;
    } else if constexpr (detail::bitwise<T>) {
      ar.write_raw(&v, sizeof(T));
    } else {
      static_assert(detail::has_member_serialize_w<T>,
                    "type is neither bitwise-serializable nor provides "
                    "serialize(Archive&)");
      // serialize() is the cereal-style bidirectional hook; it only reads
      // from the value on the write side.
      const_cast<T&>(v).serialize(ar);
    }
  }
  static void read(reader& ar, T& v) {
    if constexpr (std::is_empty_v<T>) {
      (void)ar;
      (void)v;
    } else if constexpr (detail::bitwise<T>) {
      ar.read_raw(&v, sizeof(T));
    } else {
      static_assert(detail::has_member_serialize_r<T>,
                    "type is neither bitwise-serializable nor provides "
                    "serialize(Archive&)");
      v.serialize(ar);
    }
  }
};

template <>
struct serialize_traits<std::string> {
  static void write(writer& ar, const std::string& s) {
    ar.write_varint(s.size());
    ar.write_raw(s.data(), s.size());
  }
  static void read(reader& ar, std::string& s) {
    const auto n = ar.read_varint();
    // take() bounds-checks against the remaining bytes.  Shrinking resize +
    // memcpy touches each byte once; only a growing destination goes
    // through assign() (which also avoids the value-initialization a
    // grow-resize would pay).
    const auto bytes = ar.source().take(n);
    if (n == 0) {
      s.clear();
    } else if (n <= s.size()) {
      s.resize(n);
      std::memcpy(s.data(), bytes.data(), n);
    } else {
      s.assign(reinterpret_cast<const char*>(bytes.data()), n);
    }
  }
};

/// string_view round-trips against the same wire format as std::string.  On
/// the read side the view points INTO the source buffer (zero copy): it is
/// valid only while the buffer lives -- for RPC handlers, until the handler
/// returns.  Handlers that keep the text must copy it into owning storage.
template <>
struct serialize_traits<std::string_view> {
  static void write(writer& ar, std::string_view s) {
    ar.write_varint(s.size());
    ar.write_raw(s.data(), s.size());
  }
  static void read(reader& ar, std::string_view& s) {
    const auto n = ar.read_varint();
    if (n == 0) {
      s = {};
      return;
    }
    const auto bytes = ar.source().take(n);
    s = std::string_view(reinterpret_cast<const char*>(bytes.data()), n);
  }
};

/// Borrowed view over the wire encoding of a vector<T> for bitwise T: same
/// format (varint count + packed elements), but deserialization takes no
/// copy -- the view points into the drained transport payload and its
/// iterators materialize elements via unaligned loads (elements sit behind
/// varints, so the bytes are not suitably aligned for a real std::span).
/// Lifetime matches the source buffer: for RPC handlers, the view dies with
/// the handler.  Senders can pass `as_wire_span(vec)` so both sides of an
/// RPC agree on the argument type while the wire bytes stay identical to
/// sending the vector itself.
template <typename T>
class wire_span {
  static_assert(detail::bitwise<T>,
                "wire_span elements must be bitwise-serializable; use "
                "std::vector for types with serialize()");

 public:
  using value_type = T;
  using const_iterator = detail::raw_read_iterator<T>;

  wire_span() = default;
  wire_span(const std::byte* data, std::size_t count) noexcept
      : data_(data), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] const_iterator begin() const noexcept { return const_iterator(data_); }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(data_ + count_ * sizeof(T));
  }

  [[nodiscard]] T operator[](std::size_t i) const noexcept {
    return begin()[static_cast<std::ptrdiff_t>(i)];
  }
  [[nodiscard]] T front() const noexcept { return *begin(); }
  [[nodiscard]] T back() const noexcept { return (*this)[count_ - 1]; }

  /// Owning copy for callers that must outlive the source buffer.
  [[nodiscard]] std::vector<T> to_vector() const {
    return std::vector<T>(begin(), end());
  }

  /// Raw byte view of the element stream (wire encoding minus the count).
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t count_ = 0;
};

/// View a vector's elements as a wire_span for sending (the vector's
/// contiguous storage is trivially also a valid element stream).
template <typename T, typename Alloc>
[[nodiscard]] wire_span<T> as_wire_span(const std::vector<T, Alloc>& v) noexcept {
  return wire_span<T>(reinterpret_cast<const std::byte*>(v.data()), v.size());
}

template <typename T>
struct serialize_traits<wire_span<T>> {
  static void write(writer& ar, const wire_span<T>& s) {
    ar.write_varint(s.size());
    // A sender-side wire_span always views contiguous element storage (a
    // vector or a received payload), so the raw bytes are the encoding.
    ar.write_raw(s.data(), s.size() * sizeof(T));
  }
  static void read(reader& ar, wire_span<T>& s) {
    const auto n = ar.read_varint();
    // Guard n*sizeof(T) against wrap before trusting the length prefix.
    if (n > ar.source().remaining() / sizeof(T)) {
      throw deserialize_error("wire_span length prefix exceeds buffer");
    }
    const auto bytes = ar.source().take(n * sizeof(T));
    s = wire_span<T>(bytes.data(), n);
  }
};

template <typename T, typename Alloc>
struct serialize_traits<std::vector<T, Alloc>> {
  static void write(writer& ar, const std::vector<T, Alloc>& v) {
    ar.write_varint(v.size());
    if constexpr (detail::bitwise<T>) {
      ar.write_raw(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) ar(e);
    }
  }
  static void read(reader& ar, std::vector<T, Alloc>& v) {
    const auto n = ar.read_varint();
    if constexpr (detail::bitwise<T>) {
      // Guard n*sizeof(T) against wrap before trusting the length prefix.
      if (n > ar.source().remaining() / sizeof(T)) {
        throw deserialize_error("vector length prefix exceeds buffer");
      }
      const auto bytes = ar.source().take(n * sizeof(T));
      if (n == 0) {
        v.clear();
      } else if (n <= v.size()) {
        // Shrinking resize destroys (trivially) without initializing.
        v.resize(n);
        std::memcpy(v.data(), bytes.data(), n * sizeof(T));
      } else {
        // assign() through the memcpy-ing iterator copy-constructs straight
        // from wire bytes -- no value-initialization pass, unlike a growing
        // resize()+memcpy.
        v.assign(detail::raw_read_iterator<T>(bytes.data()),
                 detail::raw_read_iterator<T>(bytes.data() + n * sizeof(T)));
      }
    } else {
      v.clear();
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        ar(v.emplace_back());
      }
    }
  }
};

template <typename T, std::size_t N>
struct serialize_traits<std::array<T, N>> {
  static void write(writer& ar, const std::array<T, N>& v) {
    if constexpr (detail::bitwise<T>) {
      ar.write_raw(v.data(), N * sizeof(T));
    } else {
      for (const auto& e : v) ar(e);
    }
  }
  static void read(reader& ar, std::array<T, N>& v) {
    if constexpr (detail::bitwise<T>) {
      ar.read_raw(v.data(), N * sizeof(T));
    } else {
      for (auto& e : v) ar(e);
    }
  }
};

template <typename A, typename B>
struct serialize_traits<std::pair<A, B>> {
  static void write(writer& ar, const std::pair<A, B>& p) { ar(p.first, p.second); }
  static void read(reader& ar, std::pair<A, B>& p) { ar(p.first, p.second); }
};

template <typename... Ts>
struct serialize_traits<std::tuple<Ts...>> {
  static void write(writer& ar, const std::tuple<Ts...>& t) {
    std::apply([&](const auto&... es) { ar(es...); }, t);
  }
  static void read(reader& ar, std::tuple<Ts...>& t) {
    std::apply([&](auto&... es) { ar(es...); }, t);
  }
};

template <typename T>
struct serialize_traits<std::optional<T>> {
  static void write(writer& ar, const std::optional<T>& o) {
    const std::uint8_t engaged = o.has_value() ? 1 : 0;
    ar(engaged);
    if (o) ar(*o);
  }
  static void read(reader& ar, std::optional<T>& o) {
    std::uint8_t engaged = 0;
    ar(engaged);
    if (engaged != 0) {
      ar(o.emplace());
    } else {
      o.reset();
    }
  }
};

namespace detail {

template <typename Map>
struct map_traits {
  static void write(writer& ar, const Map& m) {
    ar.write_varint(m.size());
    for (const auto& [k, v] : m) ar(k, v);
  }
  static void read(reader& ar, Map& m) {
    const auto n = ar.read_varint();
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename Map::key_type k{};
      typename Map::mapped_type v{};
      ar(k, v);
      m.emplace(std::move(k), std::move(v));
    }
  }
};

template <typename Set>
struct set_traits {
  static void write(writer& ar, const Set& s) {
    ar.write_varint(s.size());
    for (const auto& e : s) ar(e);
  }
  static void read(reader& ar, Set& s) {
    const auto n = ar.read_varint();
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename Set::key_type e{};
      ar(e);
      s.emplace(std::move(e));
    }
  }
};

}  // namespace detail

template <typename K, typename V, typename C, typename A>
struct serialize_traits<std::map<K, V, C, A>> : detail::map_traits<std::map<K, V, C, A>> {};

template <typename K, typename V, typename H, typename E, typename A>
struct serialize_traits<std::unordered_map<K, V, H, E, A>>
    : detail::map_traits<std::unordered_map<K, V, H, E, A>> {};

template <typename K, typename C, typename A>
struct serialize_traits<std::set<K, C, A>> : detail::set_traits<std::set<K, C, A>> {};

template <typename K, typename H, typename E, typename A>
struct serialize_traits<std::unordered_set<K, H, E, A>>
    : detail::set_traits<std::unordered_set<K, H, E, A>> {};

template <typename T>
void writer::write_one(const T& value) {
  serialize_traits<std::remove_cvref_t<T>>::write(*this, value);
}

template <typename T>
void reader::read_one(T& value) {
  serialize_traits<std::remove_cvref_t<T>>::read(*this, value);
}

// ---------------------------------------------------------------------------
// Convenience entry points.
// ---------------------------------------------------------------------------

/// Serialize `values...` onto the end of `buf`.
template <typename... Ts>
void pack(byte_buffer& buf, const Ts&... values) {
  writer ar(buf);
  ar(values...);
}

/// Deserialize `values...` from `rd` in order.
template <typename... Ts>
void unpack(buffer_reader& rd, Ts&... values) {
  reader ar(rd);
  ar(values...);
}

/// Round-trip helper primarily for tests: serialize then deserialize a copy.
template <typename T>
[[nodiscard]] T roundtrip(const T& value) {
  byte_buffer buf;
  pack(buf, value);
  buffer_reader rd(buf.view());
  T out{};
  unpack(rd, out);
  return out;
}

/// Byte count a value would occupy when serialized (used by the Push-Pull
/// dry-run cost model and by tests).
template <typename... Ts>
[[nodiscard]] std::size_t packed_size(const Ts&... values) {
  byte_buffer buf;
  pack(buf, values...);
  return buf.size();
}

}  // namespace tripoll::serial
