// wire_guard.hpp -- compile-time layout guards for bitwise wire structs.
//
// Any trivially copyable type without a `tripoll_force_member_serialize`
// opt-out reaches serialize.hpp's bitwise path and ships as a raw
// `memcpy(&v, sizeof(T))`.  If sizeof(T) exceeds the sum of the member
// sizes, the difference is compiler-inserted padding: indeterminate bytes
// that leak onto the wire (and into snapshot files), breaking the
// bit-identical-payload guarantee and, in the worst case, leaking stack
// contents across rank boundaries.
//
// `TRIPOLL_WIRE_ASSERT(T, members...)` pins a struct's wire layout at
// compile time: it fails the plain build (no lint tool required) when T
// gains padding or stops being trivially copyable.  Place one next to every
// concrete bitwise wire struct; `tools/tripoll-lint`'s `tripoll-wire-padding`
// check enforces the same rule over the whole tree (including structs nobody
// remembered to guard) and treats a TRIPOLL_WIRE_ASSERT registration as the
// authoritative member list.  See docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <type_traits>

namespace tripoll::serial {

namespace detail {

template <typename M>
struct member_object_size;

/// Size contribution of one member, named by pointer-to-member.  Empty
/// members mirror [[no_unique_address]]: they occupy zero wire bytes (the
/// bitwise writer memcpys sizeof(T), and an empty [[no_unique_address]]
/// member adds nothing to sizeof(T)).
template <typename C, typename M>
struct member_object_size<M C::*> {
  static constexpr std::size_t value = std::is_empty_v<M> ? 0 : sizeof(M);
};

}  // namespace detail

/// Sum of the sizes of the members named by pointer-to-member, i.e. the
/// padding-free ("packed") size of the struct's wire image.
template <auto... Members>
inline constexpr std::size_t packed_size_of =
    (std::size_t{0} + ... + detail::member_object_size<decltype(Members)>::value);

/// True when T either stays off the bitwise path (not trivially copyable,
/// so it serializes member-by-member) or carries no padding.  Useful as a
/// dependent guard inside templates whose members may or may not be bitwise.
template <typename T, auto... Members>
inline constexpr bool wire_layout_packed =
    !std::is_trivially_copyable_v<T> || sizeof(T) == packed_size_of<Members...>;

}  // namespace tripoll::serial

// Map `m1, m2, ...` to `&T::m1, &T::m2, ...` (up to 12 members; add arms as
// needed).  The indirection through TRIPOLL_WIRE_M_N_ forces the argument
// count to expand before token pasting.
#define TRIPOLL_WIRE_M_1(T, m) &T::m
#define TRIPOLL_WIRE_M_2(T, m, ...) &T::m, TRIPOLL_WIRE_M_1(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_3(T, m, ...) &T::m, TRIPOLL_WIRE_M_2(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_4(T, m, ...) &T::m, TRIPOLL_WIRE_M_3(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_5(T, m, ...) &T::m, TRIPOLL_WIRE_M_4(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_6(T, m, ...) &T::m, TRIPOLL_WIRE_M_5(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_7(T, m, ...) &T::m, TRIPOLL_WIRE_M_6(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_8(T, m, ...) &T::m, TRIPOLL_WIRE_M_7(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_9(T, m, ...) &T::m, TRIPOLL_WIRE_M_8(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_10(T, m, ...) &T::m, TRIPOLL_WIRE_M_9(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_11(T, m, ...) &T::m, TRIPOLL_WIRE_M_10(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_12(T, m, ...) &T::m, TRIPOLL_WIRE_M_11(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_N_(T, N, ...) TRIPOLL_WIRE_M_##N(T, __VA_ARGS__)
#define TRIPOLL_WIRE_M_N(T, N, ...) TRIPOLL_WIRE_M_N_(T, N, __VA_ARGS__)
#define TRIPOLL_WIRE_M_PICK(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11, _12, N, ...) N

/// Pin the wire layout of a concrete bitwise wire struct: trivially
/// copyable, and sizeof(T) equals the sum of the listed member sizes (no
/// padding anywhere, tail included -- tail padding ships too).  List every
/// non-static data member in declaration order.
#define TRIPOLL_WIRE_ASSERT(T, ...)                                                      \
  static_assert(std::is_trivially_copyable_v<T>,                                         \
                #T ": wire structs must be trivially copyable");                         \
  static_assert(                                                                         \
      sizeof(T) ==                                                                       \
          ::tripoll::serial::packed_size_of<TRIPOLL_WIRE_M_N(                            \
              T, TRIPOLL_WIRE_M_PICK(__VA_ARGS__, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1), \
              __VA_ARGS__)>,                                                             \
      #T ": padding bytes would reach the wire through the bitwise serialize "           \
         "path; reorder or explicitly pad the members (tripoll-wire-padding)")
