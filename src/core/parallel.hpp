// Intra-rank parallel traversal primitives.
//
// The survey engine partitions the frozen CSR vertex walk across a small
// worker pool (std::thread -- no OpenMP dependency).  Two queue shapes are
// needed:
//
//   * chunk_queue -- self-scheduling ranges over [0, total): workers grab
//     contiguous chunks via an atomic cursor (classic work stealing without
//     per-item overhead).  Used for the send stages, where work per source
//     vertex is skewed by degree.
//
//   * task_queue<T> -- a mutex+condvar MPMC deque used for the receive side:
//     the main (draining) thread enqueues intersection tasks carved out of
//     incoming batches, workers pop until the queue is closed.
//
// Thread counts resolve through resolve_threads(): an explicit
// survey_options::threads wins, 0 falls back to the TRIPOLL_THREADS
// environment variable, and an unset/invalid environment means 1 (serial).
// See docs/THREADING.md for the full concurrency contract.
//
// fork_join() is the blocking counterpart used by the ingest/freeze pipeline
// (graph/io.cpp, graph/frozen.hpp): spawn workers 1..T-1, run worker 0 on the
// calling thread, join, rethrow the first worker exception.  Workers may be
// pinned round-robin over the hardware CPUs (pin_current_thread) when the
// user opts in via survey_options::pin_threads or TRIPOLL_PIN=1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tripoll::core {

// Resolve an options-level thread request into an actual worker count (>= 1).
// `requested` > 0 is taken verbatim; 0 consults TRIPOLL_THREADS; anything
// unparseable or < 1 degrades to 1 so a bad environment never aborts a run.
[[nodiscard]] inline int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TRIPOLL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

// Resolve a pinning request: an explicit true wins, false consults the
// TRIPOLL_PIN environment variable ("1"/"true"/anything not starting with
// '0' enables).  Mirrors resolve_threads() so the CLI and env compose.
[[nodiscard]] inline bool resolve_pinning(bool requested) {
  if (requested) return true;
  if (const char* env = std::getenv("TRIPOLL_PIN")) {
    return env[0] != '\0' && env[0] != '0';
  }
  return false;
}

// Pin the calling thread to CPU (slot mod hardware_concurrency).  Callers
// pass a globally distinct slot (rank * threads + worker) so co-located
// ranks under the threads-as-ranks and socket runtimes interleave over the
// CPUs round-robin instead of stacking on core 0.  Best-effort: a no-op on
// non-Linux platforms or when affinity syscalls are unavailable, and never
// an error -- pinning is a performance hint, not a correctness requirement.
inline void pin_current_thread(int slot) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || slot < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(slot) % hw, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)slot;
#endif
}

// Blocking fork-join: run fn(worker) for worker in [0, threads), with worker
// 0 on the calling thread and the rest on spawned threads.  Exceptions are
// captured per worker and the first (by worker index) is rethrown after the
// join, so a throwing worker never detaches or deadlocks the caller.
template <typename Fn>
void fork_join(int threads, Fn&& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    try {
      workers.emplace_back([&fn, &errors, w] {
        try {
          fn(w);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    } catch (...) {
      // Thread spawn failed (resource exhaustion): join the workers already
      // running before rethrowing -- destroying a joinable std::thread
      // calls std::terminate.
      for (auto& t : workers) t.join();
      throw;
    }
  }
  try {
    fn(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& w : workers) w.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

// Self-scheduling contiguous chunks over [0, total).  next() hands out
// [first, last) ranges until the index space is exhausted.  Safe for any
// number of concurrent callers; wait-free (single fetch_add per grab).
class chunk_queue {
 public:
  chunk_queue(std::size_t total, std::size_t chunk)
      : total_(total), chunk_(chunk == 0 ? 1 : chunk) {}

  bool next(std::size_t& first, std::size_t& last) noexcept {
    const std::size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    first = begin;
    last = begin + chunk_ < total_ ? begin + chunk_ : total_;
    return true;
  }

 private:
  std::size_t total_;
  std::size_t chunk_;
  std::atomic<std::size_t> cursor_{0};
};

// Pick a chunk size that gives each worker several grabs (for balance on
// skewed degree distributions) without collapsing into per-item contention.
[[nodiscard]] inline std::size_t chunk_size_for(std::size_t total, int threads) {
  const std::size_t target_grabs = static_cast<std::size_t>(threads) * 8;
  std::size_t chunk = target_grabs > 0 ? total / target_grabs : total;
  if (chunk < 16) chunk = 16;
  return chunk;
}

// Bounded-unbounded MPMC queue: producers push, consumers pop-or-block until
// close().  pop() returns false only once the queue is both closed and empty,
// so every pushed task is consumed exactly once.
template <typename T>
class task_queue {
 public:
  void push(T task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      items_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Non-blocking variant for the draining thread: lets it interleave queue
  // help with inbox polls instead of parking on the condvar.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  // Re-arm after close() so one engine can run several phases.
  void reopen() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tripoll::core
