// Intra-rank parallel traversal primitives.
//
// The survey engine partitions the frozen CSR vertex walk across a small
// worker pool (std::thread -- no OpenMP dependency).  Two queue shapes are
// needed:
//
//   * chunk_queue -- self-scheduling ranges over [0, total): workers grab
//     contiguous chunks via an atomic cursor (classic work stealing without
//     per-item overhead).  Used for the send stages, where work per source
//     vertex is skewed by degree.
//
//   * task_queue<T> -- a mutex+condvar MPMC deque used for the receive side:
//     the main (draining) thread enqueues intersection tasks carved out of
//     incoming batches, workers pop until the queue is closed.
//
// Thread counts resolve through resolve_threads(): an explicit
// survey_options::threads wins, 0 falls back to the TRIPOLL_THREADS
// environment variable, and an unset/invalid environment means 1 (serial).
// See docs/THREADING.md for the full concurrency contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <utility>

namespace tripoll::core {

// Resolve an options-level thread request into an actual worker count (>= 1).
// `requested` > 0 is taken verbatim; 0 consults TRIPOLL_THREADS; anything
// unparseable or < 1 degrades to 1 so a bad environment never aborts a run.
[[nodiscard]] inline int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TRIPOLL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

// Self-scheduling contiguous chunks over [0, total).  next() hands out
// [first, last) ranges until the index space is exhausted.  Safe for any
// number of concurrent callers; wait-free (single fetch_add per grab).
class chunk_queue {
 public:
  chunk_queue(std::size_t total, std::size_t chunk)
      : total_(total), chunk_(chunk == 0 ? 1 : chunk) {}

  bool next(std::size_t& first, std::size_t& last) noexcept {
    const std::size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    first = begin;
    last = begin + chunk_ < total_ ? begin + chunk_ : total_;
    return true;
  }

 private:
  std::size_t total_;
  std::size_t chunk_;
  std::atomic<std::size_t> cursor_{0};
};

// Pick a chunk size that gives each worker several grabs (for balance on
// skewed degree distributions) without collapsing into per-item contention.
[[nodiscard]] inline std::size_t chunk_size_for(std::size_t total, int threads) {
  const std::size_t target_grabs = static_cast<std::size_t>(threads) * 8;
  std::size_t chunk = target_grabs > 0 ? total / target_grabs : total;
  if (chunk < 16) chunk = 16;
  return chunk;
}

// Bounded-unbounded MPMC queue: producers push, consumers pop-or-block until
// close().  pop() returns false only once the queue is both closed and empty,
// so every pushed task is consumed exactly once.
template <typename T>
class task_queue {
 public:
  void push(T task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      items_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Non-blocking variant for the draining thread: lets it interleave queue
  // help with inbox polls instead of parking on the condvar.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  // Re-arm after close() so one engine can run several phases.
  void reopen() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tripoll::core
