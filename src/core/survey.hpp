// survey.hpp -- the TriPoll triangle-survey engine (Secs. 4.3-4.4),
// executing declarative survey plans (core/plan.hpp).
//
// The engine identifies every triangle Δpqr (p <+ q <+ r) of a DODGr and
// fans each discovery out to the plan's callbacks with the six pieces of
// (projected) metadata.  There is no return value in the traditional sense
// (paper Sec. 4.5): the callbacks' side effects on their per-rank contexts
// -- counters, distributed counting sets, file writers -- are the output.
// The engine returns execution metrics (per-phase wall time, measured
// communication volume, pull statistics) plus per-callback fire counts.
//
// Two execution strategies:
//   * push_only (Alg. 1): every wedge batch (p's adjacency suffix at q) is
//     pushed to Rank(q) and merge-path-intersected with Adjm+(q).
//   * push_pull (Sec. 4.4): a communication-free dry-run counts, for every
//     (source rank, target vertex q), the suffix edges that would be pushed;
//     Rank(q) grants a "pull" when shipping Adjm+(q) once to that rank is
//     cheaper, and the work then splits into Push and Pull phases.
//
// Intra-rank parallelism (docs/THREADING.md): with survey_options::threads
// > 1 over a FROZEN graph, each phase's vertex walk is partitioned into
// work-stealing chunks consumed by a small std::thread pool.  Workers stage
// sends into per-thread buffers delivered straight to the thread-safe
// transport (never through the communicator), and -- when every plan entry
// was registered with .add_reduced() -- intersect incoming batches as tasks
// firing into per-thread context slices, merged by the declared reductions
// at phase end.  Counts, volume_bytes and messages are bit-identical across
// thread counts: per-RPC serialization is unchanged and every reported
// metric is a sum of per-batch/per-source contributions independent of the
// partition.
//
// Hub/tail intersection dispatch (core/intersect.hpp): when the frozen
// graph carries hub bitmap rows and the plan ships no metadata, a wedge
// batch arriving at a hub is closed by an O(1)-per-candidate sparse-vs-dense
// bitmap probe (AVX2 or portable) instead of a gallop; tails keep the
// merge/gallop kernels.  The kernel picked for a batch depends only on
// whether the target owns a bitmap row, so the reported bitmap/list mix is
// deterministic too.
//
// What travels is governed by the plan's projections: every metadata field
// of a wedge batch or pulled adjacency is projected sender-side, so the
// wire (and handler) types below are templated on the PROJECTED metadata
// types, not the graph's.  Owning std::string projections additionally
// deserialize as std::string_view into the drained payload (zero copies).
//
// The legacy single-callback entry point `triangle_survey(graph, callback,
// context)` is a thin identity-projection wrapper over a one-callback plan.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/intersect.hpp"
#include "core/parallel.hpp"
#include "core/plan.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"
#include "serial/wire_guard.hpp"

namespace tripoll {

namespace core::detail {

using clock = std::chrono::steady_clock;

[[nodiscard]] inline double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// A candidate closing vertex r shipped with a wedge batch: enough to merge
/// against Adjm+(q) under the <+ order, plus the PROJECTED meta(p,r) for
/// the callbacks.  [[no_unique_address]] lets a dropped (graph::none)
/// projection cost zero struct bytes, so the bitwise wire image shrinks
/// from 24 to 16 bytes per candidate on metadata-free surveys.
template <typename EdgeMeta>
struct wedge_candidate {
  /// string_view metadata makes the struct trivially copyable, but its
  /// interior pointer is meaningless on the destination rank -- force the
  /// archive path so views re-point into the received payload.
  static constexpr bool tripoll_force_member_serialize =
      !serial::detail::bitwise<EdgeMeta>;

  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  [[no_unique_address]] EdgeMeta meta_pr{};

  /// Construct with deterministic padding.  A narrow EdgeMeta (say a
  /// uint32_t behind the two u64s) leaves alignment padding inside the
  /// struct, and the bitwise serialize path memcpys sizeof(*this) -- so
  /// padding bytes ship.  Zero the object representation first so they
  /// ship as zeros, keeping payloads bit-identical run to run
  /// (tripoll-wire-padding; see docs/STATIC_ANALYSIS.md).
  [[nodiscard]] static wedge_candidate make(graph::vertex_id r, std::uint64_t r_rank,
                                            const EdgeMeta& meta_pr) {
    wedge_candidate c;
    if constexpr (serial::detail::bitwise<wedge_candidate>) {
      if constexpr (sizeof(wedge_candidate) >
                    serial::packed_size_of<&wedge_candidate::r, &wedge_candidate::r_rank,
                                           &wedge_candidate::meta_pr>) {
        std::memset(static_cast<void*>(&c), 0, sizeof(c));
      }
    }
    c.r = r;
    c.r_rank = r_rank;
    c.meta_pr = meta_pr;
    return c;
  }

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_pr);
  }
};

/// One entry of a pulled adjacency list Adjm+(q): target vertex metadata is
/// deliberately omitted -- the puller already stores meta(r) in its own
/// Adjm+(p) (paper Sec. 4.3: "this extra metadata is never actually
/// transmitted").  Edge metadata is the projected type, as above.
template <typename EdgeMeta>
struct pulled_entry {
  static constexpr bool tripoll_force_member_serialize =
      !serial::detail::bitwise<EdgeMeta>;

  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  [[no_unique_address]] EdgeMeta meta_qr{};

  /// Deterministic-padding constructor; see wedge_candidate::make.
  [[nodiscard]] static pulled_entry make(graph::vertex_id r, std::uint64_t r_rank,
                                         const EdgeMeta& meta_qr) {
    pulled_entry e;
    if constexpr (serial::detail::bitwise<pulled_entry>) {
      if constexpr (sizeof(pulled_entry) >
                    serial::packed_size_of<&pulled_entry::r, &pulled_entry::r_rank,
                                           &pulled_entry::meta_qr>) {
        std::memset(static_cast<void*>(&e), 0, sizeof(e));
      }
    }
    e.r = r;
    e.r_rank = r_rank;
    e.meta_qr = meta_qr;
    return e;
  }

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_qr);
  }
};

/// Receive-side type of a shipped element batch.  For bitwise metadata (the
/// common case: plain counting, timestamps) the batch arrives as a
/// serial::wire_span viewing the drained transport payload directly -- the
/// receive path performs zero copies and zero allocations per batch.  Rich
/// metadata (strings, containers) keeps the owning vector of elements, but
/// string fields inside the elements still deserialize as string_view into
/// the payload.  Both encode identically on the wire, so this is purely a
/// receive-path optimization.
template <typename T>
using batch_arg =
    std::conditional_t<serial::detail::bitwise<T>, serial::wire_span<T>, std::vector<T>>;

/// Sender-side adapter matching batch_arg<T>'s deserialization type.
template <typename T>
[[nodiscard]] decltype(auto) as_batch_arg(const std::vector<T>& v) noexcept {
  if constexpr (serial::detail::bitwise<T>) {
    return serial::as_wire_span(v);
  } else {
    return (v);
  }
}

}  // namespace core::detail

/// Survey engine: one instance per rank, constructed collectively over a
/// (graph, plan) pair.  Usually accessed through `survey_plan::run()` or
/// the legacy `triangle_survey` free function below.
template <typename Graph, typename Plan>
class survey_engine {
 public:
  using graph_type = Graph;
  using plan_type = Plan;
  using vertex_meta_type = typename Graph::vertex_meta_type;
  using edge_meta_type = typename Graph::edge_meta_type;
  using record_type = typename Graph::record_type;
  using entry_type = typename Graph::entry_type;
  static constexpr std::size_t num_callbacks = Plan::num_callbacks;

  /// Projected metadata types (what the projections return)...
  using pv_type = typename Plan::projected_vertex_type;
  using pe_type = typename Plan::projected_edge_type;
  /// ...and their wire/receive forms (std::string deserializes as a view).
  using wire_vm = core::detail::wire_type_t<pv_type>;
  using wire_em = core::detail::wire_type_t<pe_type>;

  using candidate_type = core::detail::wedge_candidate<wire_em>;
  using pulled_type = core::detail::pulled_entry<wire_em>;
  using view_type = triangle_view<wire_vm, wire_em>;
  using self = survey_engine<Graph, Plan>;

  /// Frozen CSR storage exposes slot-addressed records and hub bitmap rows;
  /// the parallel chunk walks and the bitmap kernels both key off this.
  static constexpr bool frozen_graph =
      requires(const Graph& g, std::uint32_t slot) {
        g.vid_at(slot);
        g.hub_bitmap(slot);
      };

  /// A bitmap answers membership, not which adjacency entry matched, so the
  /// probe path exists only for metadata-free wire shapes over frozen CSR.
  static constexpr bool bitmap_eligible =
      frozen_graph && std::is_empty_v<wire_vm> && std::is_empty_v<wire_em>;

  /// May incoming batches be intersected on worker threads?  Requires every
  /// plan entry to carry a declared reduction (plan.hpp: add_reduced) so
  /// fires land in per-thread context slices.  Otherwise a parallel run
  /// still parallelizes the send stages but intersects on the owning thread.
  static constexpr bool task_capable =
      frozen_graph && Plan::template parallel_fire_capable<view_type>;

  /// Time-windowed surveys (plan.window(t0, t1)) filter on the graph's
  /// STORED edge metadata -- before projection -- so the predicate is
  /// push-down: inadmissible wedge edges and candidates never serialize
  /// (volume drops sender-side).  Only meaningful when the stored type is a
  /// timestamp; plan.window() static_asserts the same condition, so a plan
  /// with an active window always reaches a capable engine.  Note this is
  /// mutually exclusive with the hub-bitmap probe by construction: bitmap
  /// rows are built only when the frozen graph stores EMPTY metadata
  /// (graph/frozen.hpp), and empty metadata is not a timestamp.
  static constexpr bool window_capable =
      std::is_convertible_v<edge_meta_type, std::uint64_t>;

  survey_engine(graph_type& g, plan_type& plan)
      : comm_(&g.comm()), graph_(&g), plan_(&plan),
        handle_(comm_->register_object(*this)) {}

  ~survey_engine() { comm_->deregister_object(handle_); }

  survey_engine(const survey_engine&) = delete;
  survey_engine& operator=(const survey_engine&) = delete;

  /// Collective: run the fused survey and return global metrics plus
  /// per-callback fire counts.
  plan_result<num_callbacks> run(survey_options opts = {}) {
    comm_->barrier();
    reset_counters();
    threads_ = 1;
    pin_ = false;
    if constexpr (frozen_graph) {
      threads_ = core::resolve_threads(opts.threads);
      pin_ = core::resolve_pinning(opts.pin_threads);
    }
    {
      const core::detail::plan_window w = plan_->time_window();
      win_active_ = window_capable && w.active;
      win_t0_ = w.t0;
      win_t1_ = w.t1;
    }
    const auto t_start = core::detail::clock::now();

    plan_result<num_callbacks> out;
    survey_result& result = out.total;
    if (opts.mode == survey_mode::push_only) {
      result.push = run_push_all_phase();
    } else {
      result.dry_run = timed_phase([&] { dry_run(); });
      result.push = run_push_undecided_phase();
      result.pull = run_pull_phase();
    }

    result.total.seconds = comm_->all_reduce_max(core::detail::seconds_since(t_start));
    // Total traffic is the sum of the phases; summing (rather than a fresh
    // snapshot delta) keeps the collective chatter of the metric reductions
    // themselves out of the reported volume.
    result.total.volume_bytes =
        result.dry_run.volume_bytes + result.push.volume_bytes + result.pull.volume_bytes;
    result.total.messages =
        result.dry_run.messages + result.push.messages + result.pull.messages;

    result.pulls_granted = comm_->all_reduce_sum(local_pulls_granted_);
    result.push_batches = comm_->all_reduce_sum(local_push_batches_);
    result.wedge_candidates = comm_->all_reduce_sum(local_candidates_);
    result.triangles_found = comm_->all_reduce_sum(local_triangles_);
    result.proposals_filtered = comm_->all_reduce_sum(local_proposals_filtered_);
    result.bitmap_batches = comm_->all_reduce_sum(local_bitmap_batches_);
    result.list_batches = comm_->all_reduce_sum(local_list_batches_);
    for (std::size_t i = 0; i < num_callbacks; ++i) {
      out.invocations[i] = comm_->all_reduce_sum(local_invocations_[i]);
    }

    // Plan-level result reductions: all_reduce the contexts of
    // reduce_scope::global entries (collective; runs on EVERY run shape).
    plan_->finish_reductions(*comm_);

    // Release dry-run scratch.
    targets_.clear();
    targets_ = {};
    pull_grants_.clear();
    pull_grants_ = {};
    return out;
  }

 private:
  // --- shared helpers -------------------------------------------------------

  void reset_counters() {
    local_pulls_granted_ = local_push_batches_ = local_candidates_ = local_triangles_ = 0;
    local_proposals_filtered_ = 0;
    local_bitmap_batches_ = local_list_batches_ = 0;
    local_invocations_.fill(0);
    targets_.clear();
    pull_grants_.clear();
  }

  template <typename Body>
  phase_metrics timed_phase(Body&& body) {
    return timed_phase(std::forward<Body>(body), [] {});
  }

  template <typename Body, typename Finish>
  phase_metrics timed_phase(Body&& body, Finish&& finish) {
    // Per-rank snapshot / barrier / body / barrier / per-rank snapshot: a
    // rank's counters move only from its own thread (worker sends go through
    // the transport under this rank's id and complete before the rank
    // announces idle), so the bracketed delta is exactly this rank's sends
    // for the phase.  The explicit reductions turn the deltas into global
    // sums that are bit-identical on every rank (a global point-in-time
    // snapshot here would race with other ranks already issuing the
    // reductions' own traffic).  `finish` runs after the closing barrier --
    // when every batch has been handled, hence every intersect task enqueued
    // -- and before the elapsed time is read, so task-queue drain, worker
    // join and slice merging are charged to the phase that produced them.
    const auto before = comm_->local_stats();
    comm_->barrier();
    const auto start = core::detail::clock::now();
    body();
    comm_->barrier();
    finish();
    const double elapsed = core::detail::seconds_since(start);
    const auto delta = comm_->local_stats() - before;  // excludes the reductions below
    phase_metrics m;
    m.seconds = comm_->all_reduce_max(elapsed);
    m.volume_bytes = comm_->all_reduce_sum(delta.remote_bytes);
    m.messages = comm_->all_reduce_sum(delta.messages_sent);
    return m;
  }

  // --- metadata projection helpers ------------------------------------------

  [[nodiscard]] decltype(auto) pv(const vertex_meta_type& m) const {
    return plan_->vertex_proj()(m);
  }
  [[nodiscard]] decltype(auto) pe(const edge_meta_type& m) const {
    return plan_->edge_proj()(m);
  }

  /// View a projected value as the wire/view type: identity for everything
  /// except owning strings, which become string_views over the argument.
  [[nodiscard]] static decltype(auto) vm_view(const pv_type& v) noexcept {
    if constexpr (std::is_same_v<wire_vm, pv_type>) {
      return (v);
    } else {
      return wire_vm(v);
    }
  }
  [[nodiscard]] static decltype(auto) em_view(const pe_type& v) noexcept {
    if constexpr (std::is_same_v<wire_em, pe_type>) {
      return (v);
    } else {
      return wire_em(v);
    }
  }

  /// Shared empty-metadata instances for the bitmap fire path (only
  /// instantiated when bitmap_eligible, i.e. both wire types are empty).
  [[nodiscard]] static const wire_vm& dummy_vm() noexcept {
    static const wire_vm v{};
    return v;
  }
  [[nodiscard]] static const wire_em& dummy_em() noexcept {
    static const wire_em v{};
    return v;
  }

  /// True when edge projections return owning strings BY VALUE: the wire
  /// views then need scratch storage that outlives the async() call.
  static constexpr bool edge_scratch_needed =
      !std::is_same_v<wire_em, pe_type> &&
      !std::is_reference_v<
          std::invoke_result_t<const typename Plan::edge_projection_type&,
                               const edge_meta_type&>>;

  /// Projected edge metadata as its wire type, parking by-value string
  /// results in `owned` (reserved by the caller) so the view stays valid
  /// until the batch is serialized.
  [[nodiscard]] wire_em em_wire(const edge_meta_type& m,
                                [[maybe_unused]] std::vector<pe_type>& owned) const {
    if constexpr (std::is_same_v<wire_em, pe_type>) {
      return pe(m);
    } else if constexpr (edge_scratch_needed) {
      owned.push_back(pe(m));
      return wire_em(owned.back());
    } else {
      return wire_em(pe(m));  // projection returned a reference into the graph
    }
  }

  // --- plan-window predicate ---------------------------------------------------

  /// Does the stored edge metadata fall inside the plan's half-open window
  /// [t0, t1)?  Always true when no window is active (the common case costs
  /// one branch) or when the metadata is not a timestamp (window_capable
  /// false compiles the test away entirely).
  [[nodiscard]] bool admits([[maybe_unused]] const edge_meta_type& m) const noexcept {
    if constexpr (window_capable) {
      if (win_active_) {
        const auto ts = static_cast<std::uint64_t>(m);
        return ts >= win_t0_ && ts < win_t1_;
      }
    }
    return true;
  }

  /// Walk the wedge splits of `rec` that survive the plan window, invoking
  /// `fn(i, q_entry, admitted_suffix)` where admitted_suffix is the number
  /// of in-window candidates past position i.  Without an active window
  /// this is the classic every-split walk with suffix = adj.size()-i-1; with
  /// one, splits whose wedge edge is out-of-window or whose admitted suffix
  /// is empty are skipped entirely (one O(|adj|) suffix-count pass keeps the
  /// dry run linear).  Shared by the serial and parallel dry-run scans so
  /// both register exactly the same (source, target) pairs.
  template <typename Rec, typename Fn>
  void scan_wedge_splits(const Rec& rec, Fn&& fn) const {
    if (rec.adj.size() < 2) return;
    bool windowed = false;
    if constexpr (window_capable) windowed = win_active_;
    if (!windowed) {
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
        fn(i, rec.adj[i], static_cast<std::uint64_t>(rec.adj.size() - i - 1));
      }
      return;
    }
    // Count admitted entries once, then walk ascending keeping the admitted
    // count of the open suffix (i, end) -- two linear passes, no per-record
    // allocation (this scan runs once per record per survey).
    std::uint64_t remaining = 0;
    for (const entry_type& e : rec.adj) remaining += admits(e.edge_meta) ? 1u : 0u;
    for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
      const entry_type& q_entry = rec.adj[i];
      const bool adm = admits(q_entry.edge_meta);
      if (adm) --remaining;
      if (!adm || remaining == 0) continue;
      fn(i, q_entry, remaining);
    }
  }

  // --- send paths (serial via the communicator, parallel via staged buffers) --

  /// Per-worker send staging: the exact wire recipe of communicator::async
  /// (varint handler id + serialized args, coalesced per destination) with
  /// delivery straight to the thread-safe transport under this rank's id.
  /// Identical bytes-per-RPC and one logical message per RPC keep
  /// volume_bytes and messages invariant to how sends are grouped, hence to
  /// the thread count (docs/THREADING.md).
  class staged_sender {
   public:
    staged_sender(comm::transport& t, int rank, int nranks)
        : t_(&t), rank_(rank), bufs_(static_cast<std::size_t>(nranks)),
          counts_(static_cast<std::size_t>(nranks), 0) {}

    template <typename Handler, typename... Args>
    void async(int dest, Handler /*handler*/, const Args&... args) {
      static_assert(std::is_empty_v<Handler>);
      const std::uint32_t id = comm::detail::handler_id<Handler, std::decay_t<Args>...>();
      auto& buf = bufs_[static_cast<std::size_t>(dest)];
      serial::writer w(buf);
      w.write_varint(id);
      w(args...);
      ++counts_[static_cast<std::size_t>(dest)];
      if (buf.size() >= kStageBytes) flush(dest);
    }

    void flush(int dest) {
      auto& buf = bufs_[static_cast<std::size_t>(dest)];
      if (buf.empty()) return;
      const std::uint64_t n = counts_[static_cast<std::size_t>(dest)];
      counts_[static_cast<std::size_t>(dest)] = 0;
      t_->deliver(rank_, dest, buf.release(), n);
    }

    void flush_all() {
      for (int dest = 0; dest < static_cast<int>(bufs_.size()); ++dest) flush(dest);
    }

    /// Fixed watermark: workers see no barrier-time decay, so a static value
    /// keeps staging deterministic and simple (64 KiB amortizes transport
    /// overhead without hoarding memory across `threads x nranks` buffers).
    static constexpr std::size_t kStageBytes = 64 * 1024;

   private:
    comm::transport* t_;
    int rank_;
    std::vector<serial::byte_buffer> bufs_;
    std::vector<std::uint64_t> counts_;
  };

  /// Serial twin of staged_sender: forwards to the communicator (adaptive
  /// flushing, polling) so the single-threaded path is exactly the old one.
  struct comm_sender {
    comm::communicator* c;
    template <typename Handler, typename... Args>
    void async(int dest, Handler h, const Args&... args) {
      c->async(dest, h, args...);
    }
  };

  /// Ship the wedge batch (p; q at position i; suffix beyond i) to Rank(q),
  /// all metadata projected sender-side.  `snd` is a comm_sender on the
  /// owning thread or a worker's staged_sender; the counters are the
  /// caller's (engine-local or per-worker, merged later).
  template <typename Sender>
  void send_wedge_batch(Sender& snd, graph::vertex_id p, const record_type& rec,
                        std::size_t i, std::uint64_t& cand_ctr,
                        std::uint64_t& batch_ctr) const {
    const entry_type& q_entry = rec.adj[i];
    if (!admits(q_entry.edge_meta)) return;  // wedge edge outside the plan window
    const std::size_t n = rec.adj.size() - i - 1;
    std::vector<candidate_type> candidates;
    candidates.reserve(n);
    std::vector<pe_type> owned;
    if constexpr (edge_scratch_needed) owned.reserve(n);
    for (std::size_t j = i + 1; j < rec.adj.size(); ++j) {
      const entry_type& e = rec.adj[j];
      if (!admits(e.edge_meta)) continue;  // candidate edge outside the window
      candidates.push_back(
          candidate_type::make(e.target, e.target_rank, em_wire(e.edge_meta, owned)));
    }
    if (candidates.empty()) return;  // only reachable with an active window
    cand_ctr += candidates.size();
    ++batch_ctr;
    decltype(auto) meta_p = pv(rec.meta);
    decltype(auto) meta_pq = pe(q_entry.edge_meta);
    snd.async(graph_->owner(q_entry.target), wedge_batch_handler{}, handle_,
              q_entry.target, p, vm_view(meta_p), em_view(meta_pq),
              core::detail::as_batch_arg(candidates));
  }

  void fire_callback(const view_type& view) {
    ++local_triangles_;
    plan_->fire(*comm_, view, local_invocations_);
  }

  // --- dry-run bookkeeping types (declared early: they appear in member
  // --- function signatures below) --------------------------------------------

  /// Compact graph-defined locator for a local record (map form: record
  /// pointer; frozen form: 4-byte CSR slot).  Stable for the whole survey
  /// (the graph is not mutated), so dry-run sources cache it.
  using record_locator = typename Graph::record_locator;

  /// One local wedge source (p, split index) with its cached locator: the
  /// push and pull phases revisit every source, and re-finding p by hash
  /// once per source pair would cost ~|E+| lookups per survey.
  struct source_ref {
    graph::vertex_id p = 0;
    record_locator rec{};
    std::uint32_t split = 0;
  };

  /// Dry-run product: for each target vertex q this rank would push to, the
  /// total candidate count and the local (p, split-index) sources -- "the
  /// pass also stores pointers to efficiently iterate over source vertices
  /// stored locally".
  struct per_target {
    std::uint64_t candidate_count = 0;
    std::uint64_t q_out_degree = 0;  ///< d+(q), known locally from Adjm+ (P6)
    bool pull_granted = false;
    std::vector<source_ref> sources;
  };

  using targets_map = std::unordered_map<graph::vertex_id, per_target>;

  // --- intra-rank worker pool -------------------------------------------------

  struct no_slices {};
  using slices_type =
      std::conditional_t<task_capable, typename Plan::slice_tuple, no_slices>;

  /// One worker thread's whole world: its staged sender, its context slices
  /// (task_capable plans only) and its counter deltas, merged into the
  /// engine in worker-index order at phase end.
  struct worker_ctx {
    worker_ctx(comm::transport& t, int rank, int nranks) : sender(t, rank, nranks) {}
    staged_sender sender;
    slices_type slices{};
    std::array<std::uint64_t, num_callbacks> fired{};
    std::uint64_t candidates = 0;
    std::uint64_t push_batches = 0;
    std::uint64_t triangles = 0;
    std::uint64_t bitmap_batches = 0;
    std::uint64_t list_batches = 0;
  };

  using task_fn = std::function<void(worker_ctx&)>;

  /// Per-phase worker pool: run_stage() spawns the workers on a send stage
  /// and drains the inbox until they finish sending (so this rank only
  /// enters the phase's closing barrier once its traffic is fully delivered
  /// -- the quiescence handshake counts delivered buffers).  Workers then
  /// consume intersect tasks until finish() closes the queue after the
  /// barrier, joins them, and merges counters and slices deterministically.
  /// The destructor makes barrier exceptions safe (close + join, no merge).
  class parallel_pool {
   public:
    explicit parallel_pool(self& eng) : eng_(eng) {}

    parallel_pool(const parallel_pool&) = delete;
    parallel_pool& operator=(const parallel_pool&) = delete;

    ~parallel_pool() {
      eng_.tasks_.close();
      eng_.tasks_enabled_ = false;
      for (auto& t : threads_) {
        if (t.joinable()) t.join();
      }
    }

    template <typename Stage>
    void run_stage(Stage&& stage) {
      auto& transport = eng_.comm_->underlying_transport();
      const int rank = eng_.comm_->rank();
      const int nranks = eng_.comm_->size();
      eng_.tasks_.reopen();
      eng_.tasks_enabled_ = task_capable;
      eng_.senders_active_.store(eng_.threads_, std::memory_order_relaxed);
      ctxs_.reserve(static_cast<std::size_t>(eng_.threads_));
      for (int w = 0; w < eng_.threads_; ++w) {
        ctxs_.push_back(std::make_unique<worker_ctx>(transport, rank, nranks));
      }
      for (int w = 0; w < eng_.threads_; ++w) {
        threads_.emplace_back([this, w, rank, &transport, stage]() mutable {
          // Rank-strided pin slots keep co-located ranks (inproc backend,
          // several socket ranks on one host) off each other's cores.
          if (eng_.pin_) core::pin_current_thread(rank * eng_.threads_ + w);
          worker_ctx& wc = *ctxs_[static_cast<std::size_t>(w)];
          try {
            stage(wc);
            wc.sender.flush_all();
          } catch (...) {
            transport.abort_run(std::current_exception());
          }
          eng_.senders_active_.fetch_sub(1, std::memory_order_acq_rel);
          task_fn task;
          while (eng_.tasks_.pop(task)) {
            try {
              task(wc);
            } catch (...) {
              transport.abort_run(std::current_exception());
            }
            task = nullptr;
          }
        });
      }
      // The owning thread drains (and enqueues tasks) while workers send;
      // leaving only once senders_active_ hits zero guarantees every staged
      // buffer has been delivered before this rank can announce idle.
      while (eng_.senders_active_.load(std::memory_order_acquire) > 0) {
        eng_.comm_->process_incoming();
        std::this_thread::yield();
      }
    }

    void finish() {
      if (finished_) return;
      finished_ = true;
      const bool had_tasks = eng_.tasks_enabled_;
      eng_.tasks_.close();
      eng_.tasks_enabled_ = false;
      for (auto& t : threads_) t.join();
      threads_.clear();
      for (auto& up : ctxs_) {
        worker_ctx& wc = *up;
        eng_.local_candidates_ += wc.candidates;
        eng_.local_push_batches_ += wc.push_batches;
        eng_.local_triangles_ += wc.triangles;
        eng_.local_bitmap_batches_ += wc.bitmap_batches;
        eng_.local_list_batches_ += wc.list_batches;
        for (std::size_t i = 0; i < num_callbacks; ++i) {
          eng_.local_invocations_[i] += wc.fired[i];
        }
      }
      if constexpr (task_capable) {
        if (had_tasks) {
          std::vector<typename Plan::slice_tuple> slices;
          slices.reserve(ctxs_.size());
          for (auto& up : ctxs_) slices.push_back(std::move(up->slices));
          eng_.plan_->merge_slices(slices);  // worker-index order
        }
      }
      ctxs_.clear();
    }

   private:
    self& eng_;
    std::vector<std::unique_ptr<worker_ctx>> ctxs_;
    std::vector<std::thread> threads_;
    bool finished_ = false;
  };

  // --- intersection (shared by the inline and worker-task receive paths) ------

  /// Close one wedge batch against Adjm+(q).  Hub targets with a bitmap row
  /// take the sparse-vs-dense probe (only when the wire carries no metadata,
  /// so the dummies below are exactly what the projections produce);
  /// everything else takes the adaptive merge/gallop.  The kernel counters
  /// are per-batch and partition-independent.
  template <typename Sink>
  void process_wedge_batch(graph::vertex_id q, graph::vertex_id p,
                           const wire_vm& meta_p, const wire_em& meta_pq,
                           const core::detail::batch_arg<candidate_type>& candidates,
                           Sink&& sink, std::uint64_t& bitmap_ctr,
                           std::uint64_t& list_ctr) const {
    if constexpr (bitmap_eligible) {
      static_assert(serial::detail::bitwise<candidate_type>);
      const auto slot = graph_->locate(q);
      const core::bitmap_view bm = graph_->hub_bitmap(slot);
      if (!bm.empty()) {
        ++bitmap_ctr;
        core::bitmap_probe(bm, candidates.data(), sizeof(candidate_type),
                           candidates.size(), [&](std::size_t k) {
                             const candidate_type cand = candidates[k];
                             sink(view_type{p, q, cand.r, meta_p, dummy_vm(),
                                            dummy_vm(), meta_pq, dummy_em(),
                                            dummy_em()});
                           });
        return;
      }
      ++list_ctr;
      decltype(auto) rec_q = graph_->resolve_record(slot);
      intersect_wedge_list(rec_q, q, p, meta_p, meta_pq, candidates,
                           std::forward<Sink>(sink));
    } else {
      ++list_ctr;
      const auto rec_q = graph_->local_find(q);
      assert(rec_q);
      intersect_wedge_list(*rec_q, q, p, meta_p, meta_pq, candidates,
                           std::forward<Sink>(sink));
    }
  }

  template <typename Rec, typename Sink>
  void intersect_wedge_list(const Rec& rec_q, graph::vertex_id q, graph::vertex_id p,
                            const wire_vm& meta_p, const wire_em& meta_pq,
                            const core::detail::batch_arg<candidate_type>& candidates,
                            Sink&& sink) const {
    decltype(auto) meta_q = pv(rec_q.meta);  // projected once per batch
    // Adaptive kernel: a short pushed suffix meeting a hub's long list
    // gallops instead of scanning (degeneracy-ordering insight from
    // Pashanasangi & Seshadhri; see core/intersect.hpp).
    core::adaptive_intersect(
        candidates.begin(), candidates.end(), rec_q.adj.begin(), rec_q.adj.end(),
        [](const candidate_type& cand) { return cand.key(); },
        [](const entry_type& e) { return e.key(); },
        [&](const candidate_type& cand, const entry_type& e) {
          if (!admits(e.edge_meta)) return;  // closing edge outside the window
          decltype(auto) meta_r = pv(e.target_meta);
          decltype(auto) meta_qr = pe(e.edge_meta);
          sink(view_type{p, q, e.target, meta_p, vm_view(meta_q), vm_view(meta_r),
                         meta_pq, cand.meta_pr, em_view(meta_qr)});
        });
  }

  /// Close one pulled adjacency Adjm+(q) against every local source (p, i).
  /// A source p owning a hub bitmap probes the pulled entries against its
  /// FULL adjacency row: a hit r satisfies q <+ r (r ∈ Adjm+(q)), and any
  /// entry of Adjm+(p) at a position <= i satisfies <=+ q, so every hit
  /// necessarily lies past the split -- the probe equals the suffix
  /// intersection.  Tail sources keep the gallop over the suffix.
  template <typename Sink>
  void process_pulled(graph::vertex_id q, const wire_vm& meta_q,
                      const core::detail::batch_arg<pulled_type>& entries,
                      const per_target& t, Sink&& sink, std::uint64_t& cand_ctr,
                      std::uint64_t& bitmap_ctr, std::uint64_t& list_ctr) const {
    for (const source_ref& s : t.sources) {
      decltype(auto) rec_p = graph_->resolve_record(s.rec);
      const graph::vertex_id p = s.p;
      const std::uint32_t i = s.split;
      bool windowed = false;
      if constexpr (window_capable) windowed = win_active_;
      if (!windowed) {
        cand_ctr += rec_p.adj.size() - i - 1;
      } else {
        for (std::size_t j = i + 1; j < rec_p.adj.size(); ++j) {
          cand_ctr += admits(rec_p.adj[j].edge_meta) ? 1u : 0u;
        }
      }
      if constexpr (bitmap_eligible) {
        static_assert(serial::detail::bitwise<pulled_type>);
        const core::bitmap_view bm = graph_->hub_bitmap(s.rec);
        if (!bm.empty()) {
          ++bitmap_ctr;
          core::bitmap_probe(bm, entries.data(), sizeof(pulled_type), entries.size(),
                             [&](std::size_t k) {
                               const pulled_type e_qr = entries[k];
                               sink(view_type{p, q, e_qr.r, dummy_vm(), meta_q,
                                              dummy_vm(), dummy_em(), dummy_em(),
                                              dummy_em()});
                             });
          continue;
        }
      }
      ++list_ctr;
      const entry_type& q_entry = rec_p.adj[i];
      decltype(auto) meta_p = pv(rec_p.meta);
      decltype(auto) meta_pq = pe(q_entry.edge_meta);
      core::adaptive_intersect(
          rec_p.adj.begin() + static_cast<std::ptrdiff_t>(i) + 1, rec_p.adj.end(),
          entries.begin(), entries.end(),
          [](const entry_type& e) { return e.key(); },
          [](const pulled_type& pe_) { return pe_.key(); },
          [&](const entry_type& e_pr, const pulled_type& e_qr) {
            if (!admits(e_pr.edge_meta)) return;  // candidate edge outside window
            // Callback on Rank(p): meta(r) comes from p's own Adjm+ entry.
            decltype(auto) meta_r = pv(e_pr.target_meta);
            decltype(auto) meta_pr = pe(e_pr.edge_meta);
            sink(view_type{p, q, e_pr.target, vm_view(meta_p), meta_q,
                           vm_view(meta_r), em_view(meta_pq), em_view(meta_pr),
                           e_qr.meta_qr});
          });
    }
  }

  // --- push-only (Alg. 1) ------------------------------------------------------

  phase_metrics run_push_all_phase() {
    if constexpr (frozen_graph) {
      if (threads_ > 1) {
        const std::size_t n = graph_->local_num_vertices();
        core::chunk_queue chunks(n, core::chunk_size_for(n, threads_));
        parallel_pool pool(*this);
        return timed_phase(
            [&] {
              pool.run_stage([&](worker_ctx& wc) {
                std::size_t first = 0, last = 0;
                while (chunks.next(first, last)) {
                  for (std::size_t slot = first; slot < last; ++slot) {
                    const auto loc = static_cast<record_locator>(slot);
                    decltype(auto) rec = graph_->resolve_record(loc);
                    const graph::vertex_id p = graph_->vid_at(loc);
                    for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
                      send_wedge_batch(wc.sender, p, rec, i, wc.candidates,
                                       wc.push_batches);
                    }
                  }
                  comm_->underlying_transport().throw_if_aborted();
                }
              });
            },
            [&] { pool.finish(); });
      }
    }
    return timed_phase([&] { push_all(); });
  }

  void push_all() {
    comm_sender snd{comm_};
    graph_->for_all_local([&](const graph::vertex_id& p, const record_type& rec) {
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
        send_wedge_batch(snd, p, rec, i, local_candidates_, local_push_batches_);
      }
    });
  }

  struct wedge_batch_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    graph::vertex_id p, const wire_vm& meta_p, const wire_em& meta_pq,
                    const core::detail::batch_arg<candidate_type>& candidates) {
      self& eng = c.resolve(h);
      if constexpr (self::task_capable) {
        if (eng.tasks_enabled_) {
          // Steal the drained payload (the candidates/meta views point into
          // it) and hand the intersection to a worker, which fires into its
          // own context slices -- the owning-thread-only contract holds for
          // the registered contexts (docs/THREADING.md).
          auto payload = c.share_current_payload();
          eng.tasks_.push([&eng, payload = std::move(payload), q, p, meta_p, meta_pq,
                           candidates](worker_ctx& wc) {
            eng.process_wedge_batch(
                q, p, meta_p, meta_pq, candidates,
                [&](const view_type& view) {
                  ++wc.triangles;
                  eng.plan_->fire_slices(view, wc.slices, wc.fired);
                },
                wc.bitmap_batches, wc.list_batches);
          });
          return;
        }
      }
      eng.process_wedge_batch(
          q, p, meta_p, meta_pq, candidates,
          [&eng](const view_type& view) { eng.fire_callback(view); },
          eng.local_bitmap_batches_, eng.local_list_batches_);
    }
  };

  // --- push-pull (Sec. 4.4) ------------------------------------------------------

  void dry_run() {
    // Communication-free counting pass; parallel over CSR slot chunks for
    // frozen graphs (per-worker partial maps merged in worker order -- the
    // per-target sums are partition-independent, only source order varies,
    // and source order never feeds a reported metric).
    bool scanned_parallel = false;
    if constexpr (frozen_graph) {
      if (threads_ > 1) {
        dry_run_scan_parallel();
        scanned_parallel = true;
      }
    }
    if (!scanned_parallel) {
      graph_->for_all_local_located([&](const graph::vertex_id& p, const record_type& rec,
                                        record_locator loc) {
        scan_wedge_splits(rec, [&](std::size_t i, const entry_type& q_entry,
                                   std::uint64_t admitted_suffix) {
          per_target& t = targets_[q_entry.target];
          t.candidate_count += admitted_suffix;
          t.q_out_degree = q_entry.target_out_degree;
          t.sources.push_back(source_ref{p, loc, static_cast<std::uint32_t>(i)});
        });
      });
    }
    // One aggregate proposal per (this rank, q) -- but only where pulling
    // could possibly win.  d+(q) is already local (the builder's P6 flow),
    // and Rank(q) grants a pull iff d+(q) < candidate_count, so a proposal
    // that fails that test here is known-hopeless and never sent.
    for (const auto& [q, t] : targets_) {
      if (t.q_out_degree >= t.candidate_count) {
        ++local_proposals_filtered_;
        continue;  // pull_granted stays false; sources push in push_undecided()
      }
      comm_->async(graph_->owner(q), propose_handler{}, handle_, q, comm_->rank(),
                   t.candidate_count);
    }
    // The barrier of timed_phase() drains proposals and decisions.
  }

  void dry_run_scan_parallel() {
    const std::size_t n = graph_->local_num_vertices();
    core::chunk_queue chunks(n, core::chunk_size_for(n, threads_));
    std::vector<targets_map> partial(static_cast<std::size_t>(threads_));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads_));
    auto scan = [&](targets_map& out, std::exception_ptr& err) {
      try {
        std::size_t first = 0, last = 0;
        while (chunks.next(first, last)) {
          for (std::size_t slot = first; slot < last; ++slot) {
            const auto loc = static_cast<record_locator>(slot);
            decltype(auto) rec = graph_->resolve_record(loc);
            if (rec.adj.size() < 2) continue;
            const graph::vertex_id p = graph_->vid_at(loc);
            scan_wedge_splits(rec, [&](std::size_t i, const entry_type& q_entry,
                                       std::uint64_t admitted_suffix) {
              per_target& t = out[q_entry.target];
              t.candidate_count += admitted_suffix;
              t.q_out_degree = q_entry.target_out_degree;
              t.sources.push_back(source_ref{p, loc, static_cast<std::uint32_t>(i)});
            });
          }
        }
      } catch (...) {
        err = std::current_exception();
      }
    };
    std::vector<std::thread> workers;
    const int rank = comm_->rank();
    for (int w = 1; w < threads_; ++w) {
      workers.emplace_back([this, &scan, &partial, &errors, rank, w] {
        if (pin_) core::pin_current_thread(rank * threads_ + w);
        scan(partial[static_cast<std::size_t>(w)], errors[static_cast<std::size_t>(w)]);
      });
    }
    scan(partial[0], errors[0]);  // the owning thread participates (comm-free, unpinned)
    for (auto& w : workers) w.join();
    for (const auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    for (auto& pm : partial) {
      for (auto& [q, t] : pm) {
        per_target& dst = targets_[q];
        dst.candidate_count += t.candidate_count;
        dst.q_out_degree = t.q_out_degree;
        if (dst.sources.empty()) {
          dst.sources = std::move(t.sources);
        } else {
          dst.sources.insert(dst.sources.end(), t.sources.begin(), t.sources.end());
        }
      }
      pm = {};
    }
  }

  struct propose_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    int source_rank, std::uint64_t candidate_count) {
      self& eng = c.resolve(h);
      const auto rec_q = eng.graph_->local_find(q);
      assert(rec_q);
      // Pull pays off when shipping Adjm+(q) once beats receiving the
      // candidates: |Adj+(q)| < sum of suffix lengths from that rank.
      const bool pull = rec_q->out_degree() < candidate_count;
      if (pull) {
        eng.pull_grants_[q].push_back(source_rank);
        ++eng.local_pulls_granted_;
      }
      c.async(source_rank, decision_handler{}, h, q, pull);
    }
  };

  struct decision_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    bool pull) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      it->second.pull_granted = pull;
    }
  };

  phase_metrics run_push_undecided_phase() {
    if constexpr (frozen_graph) {
      if (threads_ > 1) {
        // Materialize the non-granted sources so workers chunk a flat array.
        std::vector<const source_ref*> work;
        for (const auto& [q, t] : targets_) {
          if (t.pull_granted) continue;
          for (const source_ref& s : t.sources) work.push_back(&s);
        }
        core::chunk_queue chunks(work.size(), core::chunk_size_for(work.size(), threads_));
        parallel_pool pool(*this);
        return timed_phase(
            [&] {
              pool.run_stage([&](worker_ctx& wc) {
                std::size_t first = 0, last = 0;
                while (chunks.next(first, last)) {
                  for (std::size_t k = first; k < last; ++k) {
                    const source_ref& s = *work[k];
                    decltype(auto) rec = graph_->resolve_record(s.rec);
                    send_wedge_batch(wc.sender, s.p, rec, s.split, wc.candidates,
                                     wc.push_batches);
                  }
                  comm_->underlying_transport().throw_if_aborted();
                }
              });
            },
            [&] { pool.finish(); });
      }
    }
    return timed_phase([&] { push_undecided(); });
  }

  void push_undecided() {
    comm_sender snd{comm_};
    for (const auto& [q, t] : targets_) {
      if (t.pull_granted) continue;
      for (const source_ref& s : t.sources) {
        decltype(auto) rec = graph_->resolve_record(s.rec);
        send_wedge_batch(snd, s.p, rec, s.split, local_candidates_, local_push_batches_);
      }
    }
  }

  phase_metrics run_pull_phase() {
    if constexpr (frozen_graph) {
      if (threads_ > 1) {
        std::vector<std::pair<graph::vertex_id, const std::vector<int>*>> pulls;
        pulls.reserve(pull_grants_.size());
        for (const auto& [q, ranks] : pull_grants_) pulls.emplace_back(q, &ranks);
        core::chunk_queue chunks(pulls.size(),
                                 core::chunk_size_for(pulls.size(), threads_));
        parallel_pool pool(*this);
        return timed_phase(
            [&] {
              pool.run_stage([&](worker_ctx& wc) {
                std::size_t first = 0, last = 0;
                while (chunks.next(first, last)) {
                  for (std::size_t k = first; k < last; ++k) {
                    send_pulled_adjacency(wc.sender, pulls[k].first, *pulls[k].second);
                  }
                  comm_->underlying_transport().throw_if_aborted();
                }
              });
            },
            [&] { pool.finish(); });
      }
    }
    return timed_phase([&] { pull_phase(); });
  }

  void pull_phase() {
    comm_sender snd{comm_};
    for (const auto& [q, ranks] : pull_grants_) {
      send_pulled_adjacency(snd, q, ranks);
    }
  }

  /// Serialize Adjm+(q) once and ship it to every granted rank.
  template <typename Sender>
  void send_pulled_adjacency(Sender& snd, graph::vertex_id q,
                             const std::vector<int>& ranks) const {
    const auto rec_q = graph_->local_find(q);
    assert(rec_q);
    std::vector<pulled_type> entries;
    entries.reserve(rec_q->adj.size());
    std::vector<pe_type> owned;
    if constexpr (edge_scratch_needed) owned.reserve(rec_q->adj.size());
    for (const entry_type& e : rec_q->adj) {
      if (!admits(e.edge_meta)) continue;  // closing edge outside the window
      entries.push_back(
          pulled_type::make(e.target, e.target_rank, em_wire(e.edge_meta, owned)));
    }
    bool windowed = false;
    if constexpr (window_capable) windowed = win_active_;
    if (windowed && entries.empty()) return;  // nothing in-window to close against
    decltype(auto) meta_q = pv(rec_q->meta);
    for (const int dest : ranks) {
      snd.async(dest, pulled_adj_handler{}, handle_, q, vm_view(meta_q),
                core::detail::as_batch_arg(entries));
    }
  }

  struct pulled_adj_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    const wire_vm& meta_q,
                    const core::detail::batch_arg<pulled_type>& entries) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      // Stable reference: targets_ sees no inserts after the dry run.
      const per_target& t = it->second;
      if constexpr (self::task_capable) {
        if (eng.tasks_enabled_) {
          auto payload = c.share_current_payload();
          eng.tasks_.push(
              [&eng, payload = std::move(payload), q, meta_q, entries, &t](worker_ctx& wc) {
                eng.process_pulled(
                    q, meta_q, entries, t,
                    [&](const view_type& view) {
                      ++wc.triangles;
                      eng.plan_->fire_slices(view, wc.slices, wc.fired);
                    },
                    wc.candidates, wc.bitmap_batches, wc.list_batches);
              });
          return;
        }
      }
      eng.process_pulled(
          q, meta_q, entries, t,
          [&eng](const view_type& view) { eng.fire_callback(view); },
          eng.local_candidates_, eng.local_bitmap_batches_, eng.local_list_batches_);
    }
  };

  comm::communicator* comm_;
  graph_type* graph_;
  plan_type* plan_;
  comm::dist_handle<self> handle_;

  targets_map targets_;
  std::unordered_map<graph::vertex_id, std::vector<int>> pull_grants_;

  int threads_ = 1;
  bool pin_ = false;  ///< resolved survey_options::pin_threads / TRIPOLL_PIN
  bool win_active_ = false;         ///< plan window active this run (run() caches it)
  std::uint64_t win_t0_ = 0;        ///< window [t0, t1) on stored edge timestamps
  std::uint64_t win_t1_ = 0;
  bool tasks_enabled_ = false;  ///< read/written on the owning thread only
  std::atomic<int> senders_active_{0};
  core::task_queue<task_fn> tasks_;

  std::uint64_t local_pulls_granted_ = 0;
  std::uint64_t local_push_batches_ = 0;
  std::uint64_t local_candidates_ = 0;
  std::uint64_t local_triangles_ = 0;
  std::uint64_t local_proposals_filtered_ = 0;
  std::uint64_t local_bitmap_batches_ = 0;
  std::uint64_t local_list_batches_ = 0;
  std::array<std::uint64_t, num_callbacks> local_invocations_{};
};

namespace core::detail {

/// Collective: construct the engine for (graph, plan) and run one survey.
/// Out-of-line from survey_plan::run() so plan.hpp does not need the engine.
template <typename Graph, typename Plan>
plan_result<Plan::num_callbacks> run_plan(Graph& g, Plan& plan, survey_options opts) {
  survey_engine<Graph, Plan> engine(g, plan);
  return engine.run(opts);
}

}  // namespace core::detail

/// Collective convenience wrapper (the original TriPoll entry point): an
/// identity-projection, single-callback plan.  `callback` is invoked as
/// `cb(view, ctx)` or `cb(comm, view, ctx)` for every triangle; `context`
/// is this rank's local survey state (counters, counting sets, sinks).
/// Works over either storage form (mutable map or frozen CSR).
template <typename Graph, typename Callback, typename Context>
survey_result triangle_survey(Graph& g, Callback callback, Context& context,
                              survey_options opts = {}) {
  auto plan = survey(g).add(std::move(callback), context);
  return core::detail::run_plan(g, plan, opts).slice(0);
}

}  // namespace tripoll
