// survey.hpp -- the TriPoll triangle-survey engine (Secs. 4.3-4.4).
//
// `triangle_survey(graph, callback, context)` identifies every triangle
// Δpqr (p <+ q <+ r) of a DODGr and executes a user callback on the six
// pieces of metadata of each.  There is no return value in the traditional
// sense (paper Sec. 4.5): the callback's side effects on the per-rank
// `context` -- counters, distributed counting sets, file writers -- are the
// output.  The engine itself returns execution metrics (per-phase wall time,
// measured communication volume, pull statistics) used by the benchmark
// harnesses.
//
// Two execution strategies:
//   * push_only (Alg. 1): every wedge batch (p's adjacency suffix at q) is
//     pushed to Rank(q) and merge-path-intersected with Adjm+(q).
//   * push_pull (Sec. 4.4): a communication-free dry-run counts, for every
//     (source rank, target vertex q), the suffix edges that would be pushed;
//     Rank(q) grants a "pull" when shipping Adjm+(q) once to that rank is
//     cheaper, and the work then splits into Push and Pull phases.
#pragma once

#include <cassert>
#include <chrono>
#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/intersect.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll {

/// Execution strategy for a survey.
enum class survey_mode {
  push_only,  ///< Alg. 1: always push adjacency suffixes
  push_pull,  ///< Sec. 4.4: dry-run + per-(rank,vertex) push-vs-pull choice
};

struct survey_options {
  survey_mode mode = survey_mode::push_pull;
};

/// Wall time and measured traffic of one survey phase.
struct phase_metrics {
  double seconds = 0.0;            ///< max over ranks
  std::uint64_t volume_bytes = 0;  ///< remote bytes, summed over ranks
  std::uint64_t messages = 0;      ///< logical RPCs, summed over ranks
};

/// Collective result of a survey run (identical on every rank).
struct survey_result {
  phase_metrics dry_run;  ///< push_pull only: proposal/decision pass
  phase_metrics push;     ///< wedge pushing (the only phase of push_only)
  phase_metrics pull;     ///< push_pull only: coalesced adjacency pulls
  phase_metrics total;

  std::uint64_t pulls_granted = 0;      ///< (rank, q) pull grants, global
  std::uint64_t push_batches = 0;       ///< wedge-batch messages, global
  std::uint64_t wedge_candidates = 0;   ///< candidate r vertices examined
  std::uint64_t triangles_found = 0;    ///< engine-side cross-check counter
  std::uint64_t proposals_filtered = 0; ///< hopeless pull proposals never sent

  [[nodiscard]] double pulls_per_rank(int nranks) const noexcept {
    return nranks > 0 ? static_cast<double>(pulls_granted) / nranks : 0.0;
  }
};

/// The six pieces of metadata of a discovered triangle Δpqr, plus the vertex
/// ids.  References point into rank-local storage or the received message
/// and are valid only for the duration of the callback.
template <typename VertexMeta, typename EdgeMeta>
struct triangle_view {
  graph::vertex_id p, q, r;
  const VertexMeta& meta_p;
  const VertexMeta& meta_q;
  const VertexMeta& meta_r;
  const EdgeMeta& meta_pq;
  const EdgeMeta& meta_pr;
  const EdgeMeta& meta_qr;
};

namespace core::detail {

using clock = std::chrono::steady_clock;

[[nodiscard]] inline double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// A candidate closing vertex r shipped with a wedge batch: enough to merge
/// against Adjm+(q) under the <+ order, plus meta(p,r) for the callback.
template <typename EdgeMeta>
struct wedge_candidate {
  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  EdgeMeta meta_pr{};

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_pr);
  }
};

/// One entry of a pulled adjacency list Adjm+(q): target vertex metadata is
/// deliberately omitted -- the puller already stores meta(r) in its own
/// Adjm+(p) (paper Sec. 4.3: "this extra metadata is never actually
/// transmitted").
template <typename EdgeMeta>
struct pulled_entry {
  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  EdgeMeta meta_qr{};

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_qr);
  }
};

/// Receive-side type of a shipped element batch.  For bitwise metadata (the
/// common case: plain counting, timestamps) the batch arrives as a
/// serial::wire_span viewing the drained transport payload directly -- the
/// receive path performs zero copies and zero allocations per batch.  Rich
/// metadata (strings, containers) keeps the owning vector.  Both encode
/// identically on the wire, so this is purely a receive-path optimization.
template <typename T>
using batch_arg =
    std::conditional_t<serial::detail::bitwise<T>, serial::wire_span<T>, std::vector<T>>;

/// Sender-side adapter matching batch_arg<T>'s deserialization type.
template <typename T>
[[nodiscard]] decltype(auto) as_batch_arg(const std::vector<T>& v) noexcept {
  if constexpr (serial::detail::bitwise<T>) {
    return serial::as_wire_span(v);
  } else {
    return (v);
  }
}

}  // namespace core::detail

/// Survey engine: one instance per rank, constructed collectively.  Usually
/// accessed through the `triangle_survey` free function below.
template <typename VertexMeta, typename EdgeMeta, typename Callback, typename Context>
class survey_engine {
 public:
  using graph_type = graph::dodgr<VertexMeta, EdgeMeta>;
  using record_type = typename graph_type::record_type;
  using entry_type = typename graph_type::entry_type;
  using candidate_type = core::detail::wedge_candidate<EdgeMeta>;
  using pulled_type = core::detail::pulled_entry<EdgeMeta>;
  using view_type = triangle_view<VertexMeta, EdgeMeta>;
  using self = survey_engine<VertexMeta, EdgeMeta, Callback, Context>;

  survey_engine(graph_type& g, Context& ctx)
      : comm_(&g.comm()), graph_(&g), context_(&ctx),
        handle_(comm_->register_object(*this)) {
    static_assert(std::is_empty_v<Callback>,
                  "survey callbacks must be stateless; put state in Context");
  }

  ~survey_engine() { comm_->deregister_object(handle_); }

  survey_engine(const survey_engine&) = delete;
  survey_engine& operator=(const survey_engine&) = delete;

  /// Collective: run the survey and return global metrics.
  survey_result run(survey_options opts = {}) {
    comm_->barrier();
    reset_counters();
    const auto t_start = core::detail::clock::now();

    survey_result result;
    if (opts.mode == survey_mode::push_only) {
      result.push = timed_phase([&] { push_all(); });
    } else {
      result.dry_run = timed_phase([&] { dry_run(); });
      result.push = timed_phase([&] { push_undecided(); });
      result.pull = timed_phase([&] { pull_phase(); });
    }

    result.total.seconds = comm_->all_reduce_max(core::detail::seconds_since(t_start));
    // Total traffic is the sum of the phases; summing (rather than a fresh
    // snapshot delta) keeps the collective chatter of the metric reductions
    // themselves out of the reported volume.
    result.total.volume_bytes =
        result.dry_run.volume_bytes + result.push.volume_bytes + result.pull.volume_bytes;
    result.total.messages =
        result.dry_run.messages + result.push.messages + result.pull.messages;

    result.pulls_granted = comm_->all_reduce_sum(local_pulls_granted_);
    result.push_batches = comm_->all_reduce_sum(local_push_batches_);
    result.wedge_candidates = comm_->all_reduce_sum(local_candidates_);
    result.triangles_found = comm_->all_reduce_sum(local_triangles_);
    result.proposals_filtered = comm_->all_reduce_sum(local_proposals_filtered_);

    // Release dry-run scratch.
    targets_.clear();
    targets_ = {};
    pull_grants_.clear();
    pull_grants_ = {};
    return result;
  }

 private:
  // --- shared helpers -------------------------------------------------------

  void reset_counters() {
    local_pulls_granted_ = local_push_batches_ = local_candidates_ = local_triangles_ = 0;
    local_proposals_filtered_ = 0;
    targets_.clear();
    pull_grants_.clear();
  }

  template <typename Body>
  phase_metrics timed_phase(Body&& body) {
    // Per-rank snapshot / barrier / body / barrier / per-rank snapshot: a
    // rank's counters move only from its own thread, so the bracketed delta
    // is exactly this rank's sends for the phase.  The explicit reductions
    // turn the deltas into global sums that are bit-identical on every rank
    // (a global point-in-time snapshot here would race with other ranks
    // already issuing the reductions' own traffic).
    const auto before = comm_->local_stats();
    comm_->barrier();
    const auto start = core::detail::clock::now();
    body();
    comm_->barrier();
    const double elapsed = core::detail::seconds_since(start);
    const auto delta = comm_->local_stats() - before;  // excludes the reductions below
    phase_metrics m;
    m.seconds = comm_->all_reduce_max(elapsed);
    m.volume_bytes = comm_->all_reduce_sum(delta.remote_bytes);
    m.messages = comm_->all_reduce_sum(delta.messages_sent);
    return m;
  }

  /// Ship the wedge batch (p; q at position i; suffix beyond i) to Rank(q).
  void send_wedge_batch(graph::vertex_id p, const record_type& rec, std::size_t i) {
    const entry_type& q_entry = rec.adj[i];
    std::vector<candidate_type> candidates;
    candidates.reserve(rec.adj.size() - i - 1);
    for (std::size_t j = i + 1; j < rec.adj.size(); ++j) {
      const entry_type& e = rec.adj[j];
      candidates.push_back(candidate_type{e.target, e.target_rank, e.edge_meta});
    }
    local_candidates_ += candidates.size();
    ++local_push_batches_;
    comm_->async(graph_->owner(q_entry.target), wedge_batch_handler{}, handle_,
                 q_entry.target, p, rec.meta, q_entry.edge_meta,
                 core::detail::as_batch_arg(candidates));
  }

  void fire_callback(const view_type& view) {
    ++local_triangles_;
    Callback cb{};
    if constexpr (std::is_invocable_v<Callback&, comm::communicator&, const view_type&,
                                      Context&>) {
      cb(*comm_, view, *context_);
    } else {
      static_assert(std::is_invocable_v<Callback&, const view_type&, Context&>,
                    "callback must be callable as cb(view, ctx) or "
                    "cb(comm, view, ctx)");
      cb(view, *context_);
    }
  }

  // --- push-only (Alg. 1) ------------------------------------------------------

  void push_all() {
    graph_->for_all_local([&](const graph::vertex_id& p, const record_type& rec) {
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) send_wedge_batch(p, rec, i);
    });
  }

  struct wedge_batch_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    graph::vertex_id p, const VertexMeta& meta_p, const EdgeMeta& meta_pq,
                    const core::detail::batch_arg<candidate_type>& candidates) {
      self& eng = c.resolve(h);
      const record_type* rec_q = eng.graph_->local_find(q);
      assert(rec_q != nullptr);
      // Adaptive kernel: a short pushed suffix meeting a hub's long list
      // gallops instead of scanning (degeneracy-ordering insight from
      // Pashanasangi & Seshadhri; see core/intersect.hpp).
      core::adaptive_intersect(
          candidates.begin(), candidates.end(), rec_q->adj.begin(), rec_q->adj.end(),
          [](const candidate_type& cand) { return cand.key(); },
          [](const entry_type& e) { return e.key(); },
          [&](const candidate_type& cand, const entry_type& e) {
            eng.fire_callback(view_type{p, q, e.target, meta_p, rec_q->meta,
                                        e.target_meta, meta_pq, cand.meta_pr,
                                        e.edge_meta});
          });
    }
  };

  // --- push-pull (Sec. 4.4) ------------------------------------------------------

  /// Dry-run product: for each target vertex q this rank would push to, the
  /// total candidate count and the local (p, split-index) sources -- "the
  /// pass also stores pointers to efficiently iterate over source vertices
  /// stored locally".
  struct per_target {
    std::uint64_t candidate_count = 0;
    std::uint64_t q_out_degree = 0;  ///< d+(q), known locally from Adjm+ (P6)
    bool pull_granted = false;
    std::vector<std::pair<graph::vertex_id, std::uint32_t>> sources;
  };

  void dry_run() {
    // Communication-free counting pass.
    graph_->for_all_local([&](const graph::vertex_id& p, const record_type& rec) {
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
        const entry_type& q_entry = rec.adj[i];
        per_target& t = targets_[q_entry.target];
        t.candidate_count += rec.adj.size() - i - 1;
        t.q_out_degree = q_entry.target_out_degree;
        t.sources.emplace_back(p, static_cast<std::uint32_t>(i));
      }
    });
    // One aggregate proposal per (this rank, q) -- but only where pulling
    // could possibly win.  d+(q) is already local (the builder's P6 flow),
    // and Rank(q) grants a pull iff d+(q) < candidate_count, so a proposal
    // that fails that test here is known-hopeless and never sent.
    for (const auto& [q, t] : targets_) {
      if (t.q_out_degree >= t.candidate_count) {
        ++local_proposals_filtered_;
        continue;  // pull_granted stays false; sources push in push_undecided()
      }
      comm_->async(graph_->owner(q), propose_handler{}, handle_, q, comm_->rank(),
                   t.candidate_count);
    }
    // The barrier of timed_phase() drains proposals and decisions.
  }

  struct propose_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    int source_rank, std::uint64_t candidate_count) {
      self& eng = c.resolve(h);
      const record_type* rec_q = eng.graph_->local_find(q);
      assert(rec_q != nullptr);
      // Pull pays off when shipping Adjm+(q) once beats receiving the
      // candidates: |Adj+(q)| < sum of suffix lengths from that rank.
      const bool pull = rec_q->out_degree() < candidate_count;
      if (pull) {
        eng.pull_grants_[q].push_back(source_rank);
        ++eng.local_pulls_granted_;
      }
      c.async(source_rank, decision_handler{}, h, q, pull);
    }
  };

  struct decision_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    bool pull) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      it->second.pull_granted = pull;
    }
  };

  void push_undecided() {
    for (const auto& [q, t] : targets_) {
      if (t.pull_granted) continue;
      for (const auto& [p, i] : t.sources) {
        const record_type* rec = graph_->local_find(p);
        assert(rec != nullptr);
        send_wedge_batch(p, *rec, i);
      }
    }
  }

  void pull_phase() {
    for (const auto& [q, ranks] : pull_grants_) {
      const record_type* rec_q = graph_->local_find(q);
      assert(rec_q != nullptr);
      std::vector<pulled_type> entries;
      entries.reserve(rec_q->adj.size());
      for (const entry_type& e : rec_q->adj) {
        entries.push_back(pulled_type{e.target, e.target_rank, e.edge_meta});
      }
      for (const int dest : ranks) {
        comm_->async(dest, pulled_adj_handler{}, handle_, q, rec_q->meta,
                     core::detail::as_batch_arg(entries));
      }
    }
  }

  struct pulled_adj_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    const VertexMeta& meta_q,
                    const core::detail::batch_arg<pulled_type>& entries) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      for (const auto& [p, i] : it->second.sources) {
        const record_type* rec_p = eng.graph_->local_find(p);
        assert(rec_p != nullptr);
        const entry_type& q_entry = rec_p->adj[i];
        eng.local_candidates_ += rec_p->adj.size() - i - 1;
        core::adaptive_intersect(
            rec_p->adj.begin() + static_cast<std::ptrdiff_t>(i) + 1, rec_p->adj.end(),
            entries.begin(), entries.end(),
            [](const entry_type& e) { return e.key(); },
            [](const pulled_type& pe) { return pe.key(); },
            [&](const entry_type& e_pr, const pulled_type& e_qr) {
              // Callback on Rank(p): meta(r) comes from p's own Adjm+ entry.
              eng.fire_callback(view_type{p, q, e_pr.target, rec_p->meta, meta_q,
                                          e_pr.target_meta, q_entry.edge_meta,
                                          e_pr.edge_meta, e_qr.meta_qr});
            });
      }
    }
  };

  comm::communicator* comm_;
  graph_type* graph_;
  Context* context_;
  comm::dist_handle<self> handle_;

  std::unordered_map<graph::vertex_id, per_target> targets_;
  std::unordered_map<graph::vertex_id, std::vector<int>> pull_grants_;

  std::uint64_t local_pulls_granted_ = 0;
  std::uint64_t local_push_batches_ = 0;
  std::uint64_t local_candidates_ = 0;
  std::uint64_t local_triangles_ = 0;
  std::uint64_t local_proposals_filtered_ = 0;
};

/// Collective convenience wrapper: construct the engine, run one survey.
///
/// `callback` is a stateless functor invoked as `cb(view, ctx)` or
/// `cb(comm, view, ctx)` for every triangle; `context` is this rank's local
/// survey state (counters, counting sets, output sinks).
template <typename VertexMeta, typename EdgeMeta, typename Callback, typename Context>
survey_result triangle_survey(graph::dodgr<VertexMeta, EdgeMeta>& g, Callback /*callback*/,
                              Context& context, survey_options opts = {}) {
  survey_engine<VertexMeta, EdgeMeta, Callback, Context> engine(g, context);
  return engine.run(opts);
}

}  // namespace tripoll
