// survey.hpp -- the TriPoll triangle-survey engine (Secs. 4.3-4.4),
// executing declarative survey plans (core/plan.hpp).
//
// The engine identifies every triangle Δpqr (p <+ q <+ r) of a DODGr and
// fans each discovery out to the plan's callbacks with the six pieces of
// (projected) metadata.  There is no return value in the traditional sense
// (paper Sec. 4.5): the callbacks' side effects on their per-rank contexts
// -- counters, distributed counting sets, file writers -- are the output.
// The engine returns execution metrics (per-phase wall time, measured
// communication volume, pull statistics) plus per-callback fire counts.
//
// Two execution strategies:
//   * push_only (Alg. 1): every wedge batch (p's adjacency suffix at q) is
//     pushed to Rank(q) and merge-path-intersected with Adjm+(q).
//   * push_pull (Sec. 4.4): a communication-free dry-run counts, for every
//     (source rank, target vertex q), the suffix edges that would be pushed;
//     Rank(q) grants a "pull" when shipping Adjm+(q) once to that rank is
//     cheaper, and the work then splits into Push and Pull phases.
//
// What travels is governed by the plan's projections: every metadata field
// of a wedge batch or pulled adjacency is projected sender-side, so the
// wire (and handler) types below are templated on the PROJECTED metadata
// types, not the graph's.  Owning std::string projections additionally
// deserialize as std::string_view into the drained payload (zero copies).
//
// The legacy single-callback entry point `triangle_survey(graph, callback,
// context)` is a thin identity-projection wrapper over a one-callback plan.
#pragma once

#include <array>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/intersect.hpp"
#include "core/plan.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll {

namespace core::detail {

using clock = std::chrono::steady_clock;

[[nodiscard]] inline double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// A candidate closing vertex r shipped with a wedge batch: enough to merge
/// against Adjm+(q) under the <+ order, plus the PROJECTED meta(p,r) for
/// the callbacks.  [[no_unique_address]] lets a dropped (graph::none)
/// projection cost zero struct bytes, so the bitwise wire image shrinks
/// from 24 to 16 bytes per candidate on metadata-free surveys.
template <typename EdgeMeta>
struct wedge_candidate {
  /// string_view metadata makes the struct trivially copyable, but its
  /// interior pointer is meaningless on the destination rank -- force the
  /// archive path so views re-point into the received payload.
  static constexpr bool tripoll_force_member_serialize =
      !serial::detail::bitwise<EdgeMeta>;

  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  [[no_unique_address]] EdgeMeta meta_pr{};

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_pr);
  }
};

/// One entry of a pulled adjacency list Adjm+(q): target vertex metadata is
/// deliberately omitted -- the puller already stores meta(r) in its own
/// Adjm+(p) (paper Sec. 4.3: "this extra metadata is never actually
/// transmitted").  Edge metadata is the projected type, as above.
template <typename EdgeMeta>
struct pulled_entry {
  static constexpr bool tripoll_force_member_serialize =
      !serial::detail::bitwise<EdgeMeta>;

  graph::vertex_id r = 0;
  std::uint64_t r_rank = 0;  ///< r's <+ ordering rank (degree or peel rank)
  [[no_unique_address]] EdgeMeta meta_qr{};

  [[nodiscard]] graph::order_key key() const noexcept {
    return graph::make_order_key(r, r_rank);
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(r, r_rank, meta_qr);
  }
};

/// Receive-side type of a shipped element batch.  For bitwise metadata (the
/// common case: plain counting, timestamps) the batch arrives as a
/// serial::wire_span viewing the drained transport payload directly -- the
/// receive path performs zero copies and zero allocations per batch.  Rich
/// metadata (strings, containers) keeps the owning vector of elements, but
/// string fields inside the elements still deserialize as string_view into
/// the payload.  Both encode identically on the wire, so this is purely a
/// receive-path optimization.
template <typename T>
using batch_arg =
    std::conditional_t<serial::detail::bitwise<T>, serial::wire_span<T>, std::vector<T>>;

/// Sender-side adapter matching batch_arg<T>'s deserialization type.
template <typename T>
[[nodiscard]] decltype(auto) as_batch_arg(const std::vector<T>& v) noexcept {
  if constexpr (serial::detail::bitwise<T>) {
    return serial::as_wire_span(v);
  } else {
    return (v);
  }
}

}  // namespace core::detail

/// Survey engine: one instance per rank, constructed collectively over a
/// (graph, plan) pair.  Usually accessed through `survey_plan::run()` or
/// the legacy `triangle_survey` free function below.
template <typename Graph, typename Plan>
class survey_engine {
 public:
  using graph_type = Graph;
  using plan_type = Plan;
  using vertex_meta_type = typename Graph::vertex_meta_type;
  using edge_meta_type = typename Graph::edge_meta_type;
  using record_type = typename Graph::record_type;
  using entry_type = typename Graph::entry_type;
  static constexpr std::size_t num_callbacks = Plan::num_callbacks;

  /// Projected metadata types (what the projections return)...
  using pv_type = typename Plan::projected_vertex_type;
  using pe_type = typename Plan::projected_edge_type;
  /// ...and their wire/receive forms (std::string deserializes as a view).
  using wire_vm = core::detail::wire_type_t<pv_type>;
  using wire_em = core::detail::wire_type_t<pe_type>;

  using candidate_type = core::detail::wedge_candidate<wire_em>;
  using pulled_type = core::detail::pulled_entry<wire_em>;
  using view_type = triangle_view<wire_vm, wire_em>;
  using self = survey_engine<Graph, Plan>;

  survey_engine(graph_type& g, plan_type& plan)
      : comm_(&g.comm()), graph_(&g), plan_(&plan),
        handle_(comm_->register_object(*this)) {}

  ~survey_engine() { comm_->deregister_object(handle_); }

  survey_engine(const survey_engine&) = delete;
  survey_engine& operator=(const survey_engine&) = delete;

  /// Collective: run the fused survey and return global metrics plus
  /// per-callback fire counts.
  plan_result<num_callbacks> run(survey_options opts = {}) {
    comm_->barrier();
    reset_counters();
    const auto t_start = core::detail::clock::now();

    plan_result<num_callbacks> out;
    survey_result& result = out.total;
    if (opts.mode == survey_mode::push_only) {
      result.push = timed_phase([&] { push_all(); });
    } else {
      result.dry_run = timed_phase([&] { dry_run(); });
      result.push = timed_phase([&] { push_undecided(); });
      result.pull = timed_phase([&] { pull_phase(); });
    }

    result.total.seconds = comm_->all_reduce_max(core::detail::seconds_since(t_start));
    // Total traffic is the sum of the phases; summing (rather than a fresh
    // snapshot delta) keeps the collective chatter of the metric reductions
    // themselves out of the reported volume.
    result.total.volume_bytes =
        result.dry_run.volume_bytes + result.push.volume_bytes + result.pull.volume_bytes;
    result.total.messages =
        result.dry_run.messages + result.push.messages + result.pull.messages;

    result.pulls_granted = comm_->all_reduce_sum(local_pulls_granted_);
    result.push_batches = comm_->all_reduce_sum(local_push_batches_);
    result.wedge_candidates = comm_->all_reduce_sum(local_candidates_);
    result.triangles_found = comm_->all_reduce_sum(local_triangles_);
    result.proposals_filtered = comm_->all_reduce_sum(local_proposals_filtered_);
    for (std::size_t i = 0; i < num_callbacks; ++i) {
      out.invocations[i] = comm_->all_reduce_sum(local_invocations_[i]);
    }

    // Release dry-run scratch.
    targets_.clear();
    targets_ = {};
    pull_grants_.clear();
    pull_grants_ = {};
    return out;
  }

 private:
  // --- shared helpers -------------------------------------------------------

  void reset_counters() {
    local_pulls_granted_ = local_push_batches_ = local_candidates_ = local_triangles_ = 0;
    local_proposals_filtered_ = 0;
    local_invocations_.fill(0);
    targets_.clear();
    pull_grants_.clear();
  }

  template <typename Body>
  phase_metrics timed_phase(Body&& body) {
    // Per-rank snapshot / barrier / body / barrier / per-rank snapshot: a
    // rank's counters move only from its own thread, so the bracketed delta
    // is exactly this rank's sends for the phase.  The explicit reductions
    // turn the deltas into global sums that are bit-identical on every rank
    // (a global point-in-time snapshot here would race with other ranks
    // already issuing the reductions' own traffic).
    const auto before = comm_->local_stats();
    comm_->barrier();
    const auto start = core::detail::clock::now();
    body();
    comm_->barrier();
    const double elapsed = core::detail::seconds_since(start);
    const auto delta = comm_->local_stats() - before;  // excludes the reductions below
    phase_metrics m;
    m.seconds = comm_->all_reduce_max(elapsed);
    m.volume_bytes = comm_->all_reduce_sum(delta.remote_bytes);
    m.messages = comm_->all_reduce_sum(delta.messages_sent);
    return m;
  }

  // --- metadata projection helpers ------------------------------------------

  [[nodiscard]] decltype(auto) pv(const vertex_meta_type& m) const {
    return plan_->vertex_proj()(m);
  }
  [[nodiscard]] decltype(auto) pe(const edge_meta_type& m) const {
    return plan_->edge_proj()(m);
  }

  /// View a projected value as the wire/view type: identity for everything
  /// except owning strings, which become string_views over the argument.
  [[nodiscard]] static decltype(auto) vm_view(const pv_type& v) noexcept {
    if constexpr (std::is_same_v<wire_vm, pv_type>) {
      return (v);
    } else {
      return wire_vm(v);
    }
  }
  [[nodiscard]] static decltype(auto) em_view(const pe_type& v) noexcept {
    if constexpr (std::is_same_v<wire_em, pe_type>) {
      return (v);
    } else {
      return wire_em(v);
    }
  }

  /// True when edge projections return owning strings BY VALUE: the wire
  /// views then need scratch storage that outlives the async() call.
  static constexpr bool edge_scratch_needed =
      !std::is_same_v<wire_em, pe_type> &&
      !std::is_reference_v<
          std::invoke_result_t<const typename Plan::edge_projection_type&,
                               const edge_meta_type&>>;

  /// Projected edge metadata as its wire type, parking by-value string
  /// results in `owned` (reserved by the caller) so the view stays valid
  /// until the batch is serialized.
  [[nodiscard]] wire_em em_wire(const edge_meta_type& m,
                                [[maybe_unused]] std::vector<pe_type>& owned) const {
    if constexpr (std::is_same_v<wire_em, pe_type>) {
      return pe(m);
    } else if constexpr (edge_scratch_needed) {
      owned.push_back(pe(m));
      return wire_em(owned.back());
    } else {
      return wire_em(pe(m));  // projection returned a reference into the graph
    }
  }

  /// Ship the wedge batch (p; q at position i; suffix beyond i) to Rank(q),
  /// all metadata projected sender-side.
  void send_wedge_batch(graph::vertex_id p, const record_type& rec, std::size_t i) {
    const entry_type& q_entry = rec.adj[i];
    const std::size_t n = rec.adj.size() - i - 1;
    std::vector<candidate_type> candidates;
    candidates.reserve(n);
    std::vector<pe_type> owned;
    if constexpr (edge_scratch_needed) owned.reserve(n);
    for (std::size_t j = i + 1; j < rec.adj.size(); ++j) {
      const entry_type& e = rec.adj[j];
      candidates.push_back(
          candidate_type{e.target, e.target_rank, em_wire(e.edge_meta, owned)});
    }
    local_candidates_ += candidates.size();
    ++local_push_batches_;
    decltype(auto) meta_p = pv(rec.meta);
    decltype(auto) meta_pq = pe(q_entry.edge_meta);
    comm_->async(graph_->owner(q_entry.target), wedge_batch_handler{}, handle_,
                 q_entry.target, p, vm_view(meta_p), em_view(meta_pq),
                 core::detail::as_batch_arg(candidates));
  }

  void fire_callback(const view_type& view) {
    ++local_triangles_;
    plan_->fire(*comm_, view, local_invocations_);
  }

  // --- push-only (Alg. 1) ------------------------------------------------------

  void push_all() {
    graph_->for_all_local([&](const graph::vertex_id& p, const record_type& rec) {
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) send_wedge_batch(p, rec, i);
    });
  }

  struct wedge_batch_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    graph::vertex_id p, const wire_vm& meta_p, const wire_em& meta_pq,
                    const core::detail::batch_arg<candidate_type>& candidates) {
      self& eng = c.resolve(h);
      // local_find returns a nullable record handle: a record pointer for
      // the mutable map, an optional record view for the frozen CSR form.
      const auto rec_q = eng.graph_->local_find(q);
      assert(rec_q);
      decltype(auto) meta_q = eng.pv(rec_q->meta);  // projected once per batch
      // Adaptive kernel: a short pushed suffix meeting a hub's long list
      // gallops instead of scanning (degeneracy-ordering insight from
      // Pashanasangi & Seshadhri; see core/intersect.hpp).
      core::adaptive_intersect(
          candidates.begin(), candidates.end(), rec_q->adj.begin(), rec_q->adj.end(),
          [](const candidate_type& cand) { return cand.key(); },
          [](const entry_type& e) { return e.key(); },
          [&](const candidate_type& cand, const entry_type& e) {
            decltype(auto) meta_r = eng.pv(e.target_meta);
            decltype(auto) meta_qr = eng.pe(e.edge_meta);
            eng.fire_callback(view_type{p, q, e.target, meta_p, vm_view(meta_q),
                                        vm_view(meta_r), meta_pq, cand.meta_pr,
                                        em_view(meta_qr)});
          });
    }
  };

  // --- push-pull (Sec. 4.4) ------------------------------------------------------

  /// Compact graph-defined locator for a local record (map form: record
  /// pointer; frozen form: 4-byte CSR slot).  Stable for the whole survey
  /// (the graph is not mutated), so dry-run sources cache it.
  using record_locator = typename Graph::record_locator;

  /// One local wedge source (p, split index) with its cached locator: the
  /// push and pull phases revisit every source, and re-finding p by hash
  /// once per source pair would cost ~|E+| lookups per survey.
  struct source_ref {
    graph::vertex_id p = 0;
    record_locator rec{};
    std::uint32_t split = 0;
  };

  /// Dry-run product: for each target vertex q this rank would push to, the
  /// total candidate count and the local (p, split-index) sources -- "the
  /// pass also stores pointers to efficiently iterate over source vertices
  /// stored locally".
  struct per_target {
    std::uint64_t candidate_count = 0;
    std::uint64_t q_out_degree = 0;  ///< d+(q), known locally from Adjm+ (P6)
    bool pull_granted = false;
    std::vector<source_ref> sources;
  };

  void dry_run() {
    // Communication-free counting pass.
    graph_->for_all_local_located([&](const graph::vertex_id& p, const record_type& rec,
                                      record_locator loc) {
      if (rec.adj.size() < 2) return;
      for (std::size_t i = 0; i + 1 < rec.adj.size(); ++i) {
        const entry_type& q_entry = rec.adj[i];
        per_target& t = targets_[q_entry.target];
        t.candidate_count += rec.adj.size() - i - 1;
        t.q_out_degree = q_entry.target_out_degree;
        t.sources.push_back(source_ref{p, loc, static_cast<std::uint32_t>(i)});
      }
    });
    // One aggregate proposal per (this rank, q) -- but only where pulling
    // could possibly win.  d+(q) is already local (the builder's P6 flow),
    // and Rank(q) grants a pull iff d+(q) < candidate_count, so a proposal
    // that fails that test here is known-hopeless and never sent.
    for (const auto& [q, t] : targets_) {
      if (t.q_out_degree >= t.candidate_count) {
        ++local_proposals_filtered_;
        continue;  // pull_granted stays false; sources push in push_undecided()
      }
      comm_->async(graph_->owner(q), propose_handler{}, handle_, q, comm_->rank(),
                   t.candidate_count);
    }
    // The barrier of timed_phase() drains proposals and decisions.
  }

  struct propose_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    int source_rank, std::uint64_t candidate_count) {
      self& eng = c.resolve(h);
      const auto rec_q = eng.graph_->local_find(q);
      assert(rec_q);
      // Pull pays off when shipping Adjm+(q) once beats receiving the
      // candidates: |Adj+(q)| < sum of suffix lengths from that rank.
      const bool pull = rec_q->out_degree() < candidate_count;
      if (pull) {
        eng.pull_grants_[q].push_back(source_rank);
        ++eng.local_pulls_granted_;
      }
      c.async(source_rank, decision_handler{}, h, q, pull);
    }
  };

  struct decision_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    bool pull) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      it->second.pull_granted = pull;
    }
  };

  void push_undecided() {
    for (const auto& [q, t] : targets_) {
      if (t.pull_granted) continue;
      for (const source_ref& s : t.sources) {
        decltype(auto) rec = graph_->resolve_record(s.rec);
        send_wedge_batch(s.p, rec, s.split);
      }
    }
  }

  void pull_phase() {
    for (const auto& [q, ranks] : pull_grants_) {
      const auto rec_q = graph_->local_find(q);
      assert(rec_q);
      std::vector<pulled_type> entries;
      entries.reserve(rec_q->adj.size());
      std::vector<pe_type> owned;
      if constexpr (edge_scratch_needed) owned.reserve(rec_q->adj.size());
      for (const entry_type& e : rec_q->adj) {
        entries.push_back(
            pulled_type{e.target, e.target_rank, em_wire(e.edge_meta, owned)});
      }
      decltype(auto) meta_q = pv(rec_q->meta);
      for (const int dest : ranks) {
        comm_->async(dest, pulled_adj_handler{}, handle_, q, vm_view(meta_q),
                     core::detail::as_batch_arg(entries));
      }
    }
  }

  struct pulled_adj_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, graph::vertex_id q,
                    const wire_vm& meta_q,
                    const core::detail::batch_arg<pulled_type>& entries) {
      self& eng = c.resolve(h);
      auto it = eng.targets_.find(q);
      assert(it != eng.targets_.end());
      for (const source_ref& s : it->second.sources) {
        decltype(auto) rec_p = eng.graph_->resolve_record(s.rec);  // cached locator
        const graph::vertex_id p = s.p;
        const std::uint32_t i = s.split;
        const entry_type& q_entry = rec_p.adj[i];
        eng.local_candidates_ += rec_p.adj.size() - i - 1;
        decltype(auto) meta_p = eng.pv(rec_p.meta);
        decltype(auto) meta_pq = eng.pe(q_entry.edge_meta);
        core::adaptive_intersect(
            rec_p.adj.begin() + static_cast<std::ptrdiff_t>(i) + 1, rec_p.adj.end(),
            entries.begin(), entries.end(),
            [](const entry_type& e) { return e.key(); },
            [](const pulled_type& pe_) { return pe_.key(); },
            [&](const entry_type& e_pr, const pulled_type& e_qr) {
              // Callback on Rank(p): meta(r) comes from p's own Adjm+ entry.
              decltype(auto) meta_r = eng.pv(e_pr.target_meta);
              decltype(auto) meta_pr = eng.pe(e_pr.edge_meta);
              eng.fire_callback(view_type{p, q, e_pr.target, vm_view(meta_p), meta_q,
                                          vm_view(meta_r), em_view(meta_pq),
                                          em_view(meta_pr), e_qr.meta_qr});
            });
      }
    }
  };

  comm::communicator* comm_;
  graph_type* graph_;
  plan_type* plan_;
  comm::dist_handle<self> handle_;

  std::unordered_map<graph::vertex_id, per_target> targets_;
  std::unordered_map<graph::vertex_id, std::vector<int>> pull_grants_;

  std::uint64_t local_pulls_granted_ = 0;
  std::uint64_t local_push_batches_ = 0;
  std::uint64_t local_candidates_ = 0;
  std::uint64_t local_triangles_ = 0;
  std::uint64_t local_proposals_filtered_ = 0;
  std::array<std::uint64_t, num_callbacks> local_invocations_{};
};

namespace core::detail {

/// Collective: construct the engine for (graph, plan) and run one survey.
/// Out-of-line from survey_plan::run() so plan.hpp does not need the engine.
template <typename Graph, typename Plan>
plan_result<Plan::num_callbacks> run_plan(Graph& g, Plan& plan, survey_options opts) {
  survey_engine<Graph, Plan> engine(g, plan);
  return engine.run(opts);
}

}  // namespace core::detail

/// Collective convenience wrapper (the original TriPoll entry point): an
/// identity-projection, single-callback plan.  `callback` is invoked as
/// `cb(view, ctx)` or `cb(comm, view, ctx)` for every triangle; `context`
/// is this rank's local survey state (counters, counting sets, sinks).
/// Works over either storage form (mutable map or frozen CSR).
template <typename Graph, typename Callback, typename Context>
survey_result triangle_survey(Graph& g, Callback callback, Context& context,
                              survey_options opts = {}) {
  auto plan = survey(g).add(std::move(callback), context);
  return core::detail::run_plan(g, plan, opts).slice(0);
}

}  // namespace tripoll
