// callbacks.hpp -- prebuilt survey callbacks, their contexts, and their
// declared minimal wire projections.
//
// Each of the paper's example analyses is a (callback, context) pair for the
// survey engine:
//   * Alg. 2  -- global triangle counting (count_callback)
//   * Alg. 3  -- max-edge-label distribution over label-distinct triangles
//   * Alg. 4  -- Reddit triangle closure times (log2-binned joint histogram)
//   * Sec. 5.8 -- FQDN 3-tuple survey on string vertex metadata
//   * Sec. 5.9 -- degree-triple survey (the "nontrivial metadata" workload)
//   * local counting -- per-vertex/per-edge participation counts, the truss /
//     clustering-coefficient building block the paper cites
//
// Every callback additionally DECLARES the minimal sender-side projections
// it needs (`vertex_projection` / `edge_projection` nested aliases): what
// must cross the wire for the analysis to run.  `plan_for(g, cb, ctx)`
// builds a survey plan preconfigured with those projections, so e.g. a
// closure-time survey over rich edge structs ships 8-byte timestamps and a
// plain count ships no metadata at all.  Passing a callback through the
// legacy `triangle_survey` wrapper instead runs it with identity
// projections (full metadata on the wire) -- results are identical either
// way, only the traffic differs.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "comm/counting_set.hpp"
#include "core/survey.hpp"

namespace tripoll::callbacks {

// --- reusable projections ---------------------------------------------------------

/// Edge metadata reduced to its uint64 timestamp (anything explicitly
/// convertible).  Rich edge structs that expose `timestamp()` or a
/// conversion ship 8 bytes instead of the struct.
struct timestamp_projection {
  template <typename T>
  [[nodiscard]] std::uint64_t operator()(const T& meta) const noexcept {
    return static_cast<std::uint64_t>(meta);
  }
};

/// Vertex metadata reduced to a uint64 degree-like scalar.
struct degree_projection {
  template <typename T>
  [[nodiscard]] std::uint64_t operator()(const T& meta) const noexcept {
    return static_cast<std::uint64_t>(meta);
  }
};

/// Survey plan preconfigured with `Cb`'s declared minimal projections: the
/// traversal ships exactly what the analysis reads.  Chain further `.add`s
/// onto the result to fuse more callbacks into the same traversal (they
/// must be satisfied by the same projections).  `g` may be the mutable map
/// form or a frozen CSR graph (for a graph frozen through the same
/// projections the projections below become cheap identities over the
/// already-projected arenas).
template <typename Cb, typename Graph, typename Context>
[[nodiscard]] auto plan_for(Graph& g, Cb cb, Context& ctx) {
  return tripoll::survey(g)
      .project_vertex(typename Cb::vertex_projection{})
      .project_edge(typename Cb::edge_projection{})
      .add(std::move(cb), ctx);
}

/// `plan_for`, but registers the callback through the plan's reduction hook
/// (`add_reduced`): under a parallel traversal each worker thread fires into
/// a private default-constructed context slice and `reduce` folds the slices
/// back into `ctx` at the phase merge point (docs/THREADING.md).  Only
/// callbacks whose whole state lives in the context qualify -- a callback
/// that touches the communicator or a distributed container (e.g. the
/// counting-set analyses calling `async_increment`) must stay on the plain
/// `plan_for` / `.add` path, which keeps it on the owning thread.
template <reduce_scope Scope = reduce_scope::threads, typename Cb, typename Graph,
          typename Context, typename Reduce>
[[nodiscard]] auto plan_for_reduced(Graph& g, Cb cb, Context& ctx, Reduce reduce) {
  return tripoll::survey(g)
      .project_vertex(typename Cb::vertex_projection{})
      .project_edge(typename Cb::edge_projection{})
      .template add_reduced<Scope>(std::move(cb), ctx, std::move(reduce));
}

// --- Alg. 2: triangle counting ---------------------------------------------------

struct count_context {
  std::uint64_t triangles = 0;

  /// Collective: the paper's final All_Reduce over rank-local counts.
  [[nodiscard]] std::uint64_t global_count(comm::communicator& c) const {
    return c.all_reduce_sum(triangles);
  }
};

struct count_callback {
  using vertex_projection = drop_projection;  ///< counting reads no metadata
  using edge_projection = drop_projection;

  template <typename View>
  void operator()(const View& /*view*/, count_context& ctx) const {
    ++ctx.triangles;
  }
};

/// Fold for `plan_for_reduced`/`add_reduced` over count contexts: counting
/// is a plain sum, so per-thread (or, under reduce_scope::global, per-rank)
/// slices merge by adding tallies.
struct count_reduce {
  [[nodiscard]] count_context operator()(const count_context& a,
                                         const count_context& b) const noexcept {
    return count_context{a.triangles + b.triangles};
  }
};

// --- Alg. 3: max edge label distribution ------------------------------------------

/// Context holds a pointer to a collectively-constructed counting set keyed
/// by edge label.  Requires label-like (ordered, hashable) metadata.
template <typename EdgeLabel>
struct max_edge_label_context {
  comm::counting_set<EdgeLabel>* counters = nullptr;
};

struct max_edge_label_callback {
  using vertex_projection = identity_projection;  ///< label distinctness test
  using edge_projection = identity_projection;    ///< the surveyed labels

  template <typename View, typename EdgeLabel>
  void operator()(const View& view, max_edge_label_context<EdgeLabel>& ctx) const {
    // Only triangles whose three vertex labels are pairwise distinct.
    if (view.meta_p == view.meta_q || view.meta_q == view.meta_r ||
        view.meta_p == view.meta_r) {
      return;
    }
    const EdgeLabel max_edge =
        std::max({view.meta_pq, view.meta_pr, view.meta_qr});
    ctx.counters->async_increment(max_edge);
  }
};

// --- Alg. 4: triangle closure times -------------------------------------------------

/// ceil(log2(dt)) binning used by the paper; dt == 0 maps to bin 0.
[[nodiscard]] inline std::uint32_t log2_bin(std::uint64_t dt) noexcept {
  if (dt <= 1) return 0;
  const int highest = 63 - __builtin_clzll(dt);
  const bool exact = (dt & (dt - 1)) == 0;
  return static_cast<std::uint32_t>(exact ? highest : highest + 1);
}

/// Joint (open, close) histogram key.
using closure_bin = std::pair<std::uint32_t, std::uint32_t>;

/// Sort-free (open, close) bin of three edge timestamps: min/max scans plus
/// an overflow-proof xor recover the middle element, with no per-triangle
/// array materialization and std::sort.
[[nodiscard]] inline closure_bin closure_bin_of(std::uint64_t a, std::uint64_t b,
                                                std::uint64_t c) noexcept {
  const std::uint64_t lo = std::min({a, b, c});
  const std::uint64_t hi = std::max({a, b, c});
  const std::uint64_t mid = a ^ b ^ c ^ lo ^ hi;  // the remaining element
  const std::uint64_t open_dt = mid - lo;   // wedge opening time
  const std::uint64_t close_dt = hi - lo;   // triangle closing time
  return closure_bin{log2_bin(open_dt), log2_bin(close_dt)};
}

struct closure_time_context {
  comm::counting_set<closure_bin>* counters = nullptr;
};

/// Edge metadata must be (convertible to) a uint64 timestamp; pair with the
/// declared `timestamp_projection` (plan_for) so rich edge structs ship 8
/// wire bytes each.  The per-edge projection extracted the timestamp once
/// on the sender; `closure_bin_of` orders the three sort-free.
struct closure_time_callback {
  using vertex_projection = drop_projection;  ///< only edge times are read
  using edge_projection = timestamp_projection;

  template <typename View>
  void operator()(const View& view, closure_time_context& ctx) const {
    ctx.counters->async_increment(
        closure_bin_of(static_cast<std::uint64_t>(view.meta_pq),
                       static_cast<std::uint64_t>(view.meta_pr),
                       static_cast<std::uint64_t>(view.meta_qr)));
  }
};

// --- Sec. 5.9: degree-triple survey ---------------------------------------------------

using degree_triple = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

struct degree_triple_context {
  comm::counting_set<degree_triple>* counters = nullptr;
};

/// Vertex metadata must be (convertible to) the vertex degree.
struct degree_triple_callback {
  using vertex_projection = degree_projection;  ///< 8 bytes per vertex meta
  using edge_projection = drop_projection;

  template <typename View>
  void operator()(const View& view, degree_triple_context& ctx) const {
    ctx.counters->async_increment(
        degree_triple{log2_bin(static_cast<std::uint64_t>(view.meta_p)),
                      log2_bin(static_cast<std::uint64_t>(view.meta_q)),
                      log2_bin(static_cast<std::uint64_t>(view.meta_r))});
  }
};

// --- Sec. 5.8: FQDN 3-tuple survey ----------------------------------------------------

/// Key: the three FQDNs of a triangle, sorted so the tuple is canonical.
using fqdn_tuple = std::tuple<std::string, std::string, std::string>;

struct fqdn_tuple_context {
  comm::counting_set<fqdn_tuple>* counters = nullptr;
  std::uint64_t distinct_fqdn_triangles = 0;  ///< rank-local tally
};

/// Vertex metadata must be a string (the FQDN).  Counts only triangles whose
/// three FQDNs are pairwise distinct, like the paper's analysis.  String
/// metadata reaches the callback as std::string_view into the drained
/// payload (the engine never copies received FQDNs); only the surviving
/// canonical tuples are materialized as owning strings.
struct fqdn_tuple_callback {
  using vertex_projection = identity_projection;  ///< the FQDNs themselves
  using edge_projection = drop_projection;

  template <typename View>
  void operator()(const View& view, fqdn_tuple_context& ctx) const {
    const std::string_view a = view.meta_p;
    const std::string_view b = view.meta_q;
    const std::string_view c = view.meta_r;
    if (a == b || b == c || a == c) return;
    ++ctx.distinct_fqdn_triangles;
    std::array<std::string_view, 3> sorted{a, b, c};
    std::sort(sorted.begin(), sorted.end());
    ctx.counters->async_increment(
        fqdn_tuple{std::string(sorted[0]), std::string(sorted[1]), std::string(sorted[2])});
  }
};

// --- full enumeration to file (Sec. 4.5 output mode) ---------------------------------

/// "Writing information on individual triangles out to file": each rank
/// owns a private sink, so enumeration needs no cross-rank coordination.
/// The caller opens/closes the stream (one file per rank is the usual
/// pattern).
struct enumerate_context {
  std::FILE* out = nullptr;
  std::uint64_t rows = 0;
};

struct enumerate_callback {
  using vertex_projection = drop_projection;  ///< ids only
  using edge_projection = drop_projection;

  template <typename View>
  void operator()(const View& view, enumerate_context& ctx) const {
    std::fprintf(ctx.out, "%llu %llu %llu\n",
                 static_cast<unsigned long long>(view.p),
                 static_cast<unsigned long long>(view.q),
                 static_cast<unsigned long long>(view.r));
    ++ctx.rows;
  }
};

// --- local participation counts (truss / clustering-coefficient primitive) -----------

/// Per-vertex triangle participation: the callback credits all three corner
/// vertices through a distributed counting set keyed by vertex id.
struct local_count_context {
  comm::counting_set<graph::vertex_id>* per_vertex = nullptr;
};

struct local_count_callback {
  using vertex_projection = drop_projection;  ///< ids only
  using edge_projection = drop_projection;

  template <typename View>
  void operator()(const View& view, local_count_context& ctx) const {
    ctx.per_vertex->async_increment(view.p);
    ctx.per_vertex->async_increment(view.q);
    ctx.per_vertex->async_increment(view.r);
  }
};

}  // namespace tripoll::callbacks
