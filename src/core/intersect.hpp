// intersect.hpp -- adjacency-list intersection kernels.
//
// The wedge-closing step intersects a pushed adjacency suffix with the
// target's adjacency list.  The paper uses merge-path intersection over
// degree-sorted lists (Sec. 4.3); binary-search and hashing variants are the
// two other canonical strategies in the distributed triangle-counting
// literature (Sec. 2) and are implemented for the baselines and for the
// `bench_micro_intersection` comparison.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <unordered_map>
#include <utility>

// Hub/tail SIMD-bitmap kernels (see docs/ARCHITECTURE.md, "Parallel
// traversal & intersection kernels").  AVX2 paths are compiled only on
// x86-64 and can be disabled with -DTRIPOLL_NO_AVX2 to force the portable
// fallback; dispatch is a cached cpuid check at runtime either way.
#if defined(__x86_64__) && !defined(TRIPOLL_NO_AVX2)
#include <immintrin.h>
#define TRIPOLL_HAVE_AVX2_KERNELS 1
// The AVX2 kernels carry an explicit function-level target so this header
// works in translation units compiled without -mavx2; the runtime cpuid
// dispatch below guards every call site.
#define TRIPOLL_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define TRIPOLL_HAVE_AVX2_KERNELS 0
#define TRIPOLL_TARGET_AVX2
#endif

namespace tripoll::core {

/// Merge-path intersection of two ranges sorted ascending under keys
/// extracted by `key_a`/`key_b` (comparable with <, ==).  Invokes
/// `on_match(a_elem, b_elem)` for every common key.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void merge_path_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                          OnMatch&& on_match) {
  while (a != a_end && b != b_end) {
    const auto ka = key_a(*a);
    const auto kb = key_b(*b);
    if (ka < kb) {
      ++a;
    } else if (kb < ka) {
      ++b;
    } else {
      on_match(*a, *b);
      ++a;
      ++b;
    }
  }
}

/// Binary-search intersection: for each element of [a, a_end), search the
/// sorted range [b, b_end).  Preferable when |A| << |B|.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void binary_search_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                             OnMatch&& on_match) {
  for (; a != a_end; ++a) {
    const auto ka = key_a(*a);
    auto it = std::lower_bound(b, b_end, ka, [&](const auto& elem, const auto& k) {
      return key_b(elem) < k;
    });
    if (it != b_end && key_b(*it) == ka) on_match(*a, *it);
  }
}

/// Galloping (exponential-search) intersection: walks the smaller range
/// [a, a_end) and locates each key in [b, b_end) by doubling steps from the
/// current position followed by a binary search over the final window.
/// Cost is O(|A| * log(gap)) probes, so it dominates merge-path when
/// |B| >> |A| -- the skewed case of the survey's wedge-closing step, where
/// a short pushed adjacency suffix meets a hub vertex's long list.
/// Requires random-access iterators for B.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void gallop_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                      OnMatch&& on_match) {
  while (a != a_end && b != b_end) {
    const auto ka = key_a(*a);
    if (key_b(*b) < ka) {
      // Gallop: after the loop, every element in [b, b+lo) is < ka and
      // b[hi] (if it exists) is >= ka; binary search the window between.
      const auto n = static_cast<std::size_t>(std::distance(b, b_end));
      std::size_t lo = 1;
      std::size_t hi = 1;
      while (hi < n && key_b(b[static_cast<std::ptrdiff_t>(hi)]) < ka) {
        lo = hi + 1;
        hi <<= 1;
      }
      if (hi > n) hi = n;
      b = std::lower_bound(b + static_cast<std::ptrdiff_t>(lo),
                           b + static_cast<std::ptrdiff_t>(hi), ka,
                           [&](const auto& elem, const auto& k) { return key_b(elem) < k; });
      if (b == b_end) return;
    }
    const auto kb = key_b(*b);
    if (ka < kb) {
      ++a;
    } else {
      on_match(*a, *b);
      ++a;
      ++b;
    }
  }
}

/// Size-ratio heuristic threshold above which galloping beats a linear
/// merge.  Crossover measured by bench_micro_intersection: merge-path does
/// |A|+|B| key comparisons, galloping ~|A|*log2(|B|/|A|) probes, so the
/// win kicks in once the ranges differ by about an order of magnitude.
inline constexpr std::size_t gallop_ratio_threshold = 16;

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define TRIPOLL_NOINLINE __attribute__((noinline))
#else
#define TRIPOLL_NOINLINE
#endif

// Outlined gallop entry for adaptive_intersect.  Inlining the galloping
// loops next to the merge loop measurably degrades the merge path's codegen
// (~1.5x on balanced inputs with gcc 12), so the cold skewed branch pays
// one call instead.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
TRIPOLL_NOINLINE void gallop_outlined(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a,
                                      KeyB key_b, OnMatch&& on_match) {
  gallop_intersect(a, a_end, b, b_end, key_a, key_b, std::forward<OnMatch>(on_match));
}

#undef TRIPOLL_NOINLINE

}  // namespace detail

/// Adaptive intersection used by the survey engine's wedge-closing step:
/// merge-path for similar sizes, galloping from the smaller side when the
/// sizes are skewed by >= gallop_ratio_threshold.  Match callback argument
/// order (a_elem, b_elem) is preserved in both regimes.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void adaptive_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                        OnMatch&& on_match) {
  const auto na = static_cast<std::size_t>(std::distance(a, a_end));
  const auto nb = static_cast<std::size_t>(std::distance(b, b_end));
  if (na == 0 || nb == 0) return;
  if (nb / na >= gallop_ratio_threshold) {
    detail::gallop_outlined(a, a_end, b, b_end, key_a, key_b,
                            std::forward<OnMatch>(on_match));
  } else if (na / nb >= gallop_ratio_threshold) {
    detail::gallop_outlined(b, b_end, a, a_end, key_b, key_a,
                            [&](const auto& eb, const auto& ea) { on_match(ea, eb); });
  } else {
    merge_path_intersect(a, a_end, b, b_end, key_a, key_b,
                         std::forward<OnMatch>(on_match));
  }
}

// ---------------------------------------------------------------------------
// Hub/tail bitmap kernels.
//
// Freeze-time construction (graph/frozen.hpp) gives every local vertex whose
// out-degree crosses `freeze_options::hub_degree_threshold` a dense bitmap
// row over raw neighbour ids.  The survey's wedge-closing step then probes a
// *sparse* list of shipped candidate ids against the *dense* hub row --
// O(1) per candidate instead of a gallop -- while tail vertices keep the
// merge/gallop kernels above.  The kernel chosen for a batch depends only on
// whether the target vertex owns a bitmap row, so the bitmap/list mix is
// deterministic and independent of thread count.

/// Non-owning view of one dense bitmap row: bit (id - base) is set iff `id`
/// is a member.  Rows are stored little-endian in 64-bit words.
struct bitmap_view {
  const std::uint64_t* words = nullptr;
  std::size_t nwords = 0;
  std::uint64_t base = 0;

  [[nodiscard]] bool empty() const { return nwords == 0; }

  [[nodiscard]] bool test(std::uint64_t id) const {
    const std::uint64_t off = id - base;  // wraps huge when id < base
    const std::uint64_t w = off >> 6;
    if (w >= nwords) return false;
    return (words[w] >> (off & 63U)) & 1U;
  }
};

/// Portable sparse-vs-dense probe: elements live at `data + i*stride`
/// with a little-endian uint64 id at offset 0; `on_hit(i)` fires for every
/// member, in ascending i (required for deterministic fire order).
template <typename OnHit>
void bitmap_probe_scalar(const bitmap_view& bm, const std::byte* data, std::size_t stride,
                         std::size_t count, OnHit&& on_hit) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t id;
    std::memcpy(&id, data + i * stride, sizeof(id));
    if (bm.test(id)) on_hit(i);
  }
}

#if TRIPOLL_HAVE_AVX2_KERNELS

/// AVX2 sparse-vs-dense probe: gathers four ids per iteration, computes the
/// word/bit split with vector shifts, and gathers the bitmap words with a
/// mask that doubles as the bounds check (lanes whose word index falls
/// outside the row -- including id < base, which wraps to a huge offset --
/// load zero and test as misses).  Hit order matches the scalar kernel.
template <typename OnHit>
TRIPOLL_TARGET_AVX2 void bitmap_probe_avx2(const bitmap_view& bm, const std::byte* data,
                                           std::size_t stride, std::size_t count,
                                           OnHit&& on_hit) {
  const auto* row = reinterpret_cast<const long long*>(bm.words);
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(bm.base));
  const __m256i vnwords = _mm256_set1_epi64x(static_cast<long long>(bm.nwords));
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i vstride =
      _mm256_setr_epi64x(0, static_cast<long long>(stride), static_cast<long long>(2 * stride),
                         static_cast<long long>(3 * stride));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const auto* p = reinterpret_cast<const long long*>(data + i * stride);
    const __m256i ids = _mm256_i64gather_epi64(p, vstride, 1);
    const __m256i off = _mm256_sub_epi64(ids, vbase);
    const __m256i word = _mm256_srli_epi64(off, 6);
    // Unsigned word < nwords via sign-bias + signed compare; this mask also
    // guards the gather so out-of-range lanes never touch memory.
    const __m256i in_range = _mm256_cmpgt_epi64(_mm256_xor_si256(vnwords, sign),
                                                _mm256_xor_si256(word, sign));
    const __m256i bits = _mm256_mask_i64gather_epi64(_mm256_setzero_si256(), row, word,
                                                     in_range, 8);
    const __m256i hit = _mm256_and_si256(
        _mm256_srlv_epi64(bits, _mm256_and_si256(off, _mm256_set1_epi64x(63))),
        _mm256_set1_epi64x(1));
    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), hit);
    if (lane[0]) on_hit(i + 0);
    if (lane[1]) on_hit(i + 1);
    if (lane[2]) on_hit(i + 2);
    if (lane[3]) on_hit(i + 3);
  }
  for (; i < count; ++i) {
    std::uint64_t id;
    std::memcpy(&id, data + i * stride, sizeof(id));
    if (bm.test(id)) on_hit(i);
  }
}

#endif  // TRIPOLL_HAVE_AVX2_KERNELS

namespace detail {

/// Cached runtime AVX2 check; always false when compiled portable.
inline bool cpu_has_avx2() {
#if TRIPOLL_HAVE_AVX2_KERNELS
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

#if TRIPOLL_HAVE_AVX2_KERNELS
TRIPOLL_TARGET_AVX2 inline std::uint64_t bitmap_and_popcount_avx2(const std::uint64_t* a,
                                                                  const std::uint64_t* b,
                                                                  std::size_t nwords) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), _mm256_and_si256(va, vb));
    total += static_cast<std::uint64_t>(__builtin_popcountll(lane[0])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lane[1])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lane[2])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lane[3]));
  }
  for (; i < nwords; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}
#endif  // TRIPOLL_HAVE_AVX2_KERNELS

}  // namespace detail

/// Dispatching sparse-vs-dense probe; both paths report hits in ascending
/// element order so the choice never changes observable results.
template <typename OnHit>
void bitmap_probe(const bitmap_view& bm, const std::byte* data, std::size_t stride,
                  std::size_t count, OnHit&& on_hit) {
#if TRIPOLL_HAVE_AVX2_KERNELS
  if (detail::cpu_has_avx2()) {
    bitmap_probe_avx2(bm, data, stride, count, std::forward<OnHit>(on_hit));
    return;
  }
#endif
  bitmap_probe_scalar(bm, data, stride, count, std::forward<OnHit>(on_hit));
}

/// Dense-vs-dense population count of `a AND b` over `nwords` words
/// (both rows must share a base).  Used by the micro benchmarks and the
/// kernel-identity tests; the survey itself only ships sparse candidate
/// lists, so its dense side is always probed via bitmap_probe.
inline std::uint64_t bitmap_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                         std::size_t nwords) {
#if TRIPOLL_HAVE_AVX2_KERNELS
  if (detail::cpu_has_avx2()) return detail::bitmap_and_popcount_avx2(a, b, nwords);
#endif
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
#else
    std::uint64_t w = a[i] & b[i];
    while (w) {
      w &= w - 1;
      ++total;
    }
#endif
  }
  return total;
}

/// Hash intersection: builds a hash set over the keys of [b, b_end) and
/// probes with each element of [a, a_end).  Keys must be hashable.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void hash_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                    OnMatch&& on_match) {
  using key_type = std::decay_t<decltype(key_b(*b))>;
  std::unordered_map<key_type, ItB> index;
  index.reserve(static_cast<std::size_t>(std::distance(b, b_end)));
  for (auto it = b; it != b_end; ++it) index.emplace(key_b(*it), it);
  for (; a != a_end; ++a) {
    auto hit = index.find(key_a(*a));
    if (hit != index.end()) on_match(*a, *hit->second);
  }
}

}  // namespace tripoll::core
