// intersect.hpp -- adjacency-list intersection kernels.
//
// The wedge-closing step intersects a pushed adjacency suffix with the
// target's adjacency list.  The paper uses merge-path intersection over
// degree-sorted lists (Sec. 4.3); binary-search and hashing variants are the
// two other canonical strategies in the distributed triangle-counting
// literature (Sec. 2) and are implemented for the baselines and for the
// `bench_micro_intersection` comparison.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace tripoll::core {

/// Merge-path intersection of two ranges sorted ascending under keys
/// extracted by `key_a`/`key_b` (comparable with <, ==).  Invokes
/// `on_match(a_elem, b_elem)` for every common key.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void merge_path_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                          OnMatch&& on_match) {
  while (a != a_end && b != b_end) {
    const auto ka = key_a(*a);
    const auto kb = key_b(*b);
    if (ka < kb) {
      ++a;
    } else if (kb < ka) {
      ++b;
    } else {
      on_match(*a, *b);
      ++a;
      ++b;
    }
  }
}

/// Binary-search intersection: for each element of [a, a_end), search the
/// sorted range [b, b_end).  Preferable when |A| << |B|.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void binary_search_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                             OnMatch&& on_match) {
  for (; a != a_end; ++a) {
    const auto ka = key_a(*a);
    auto it = std::lower_bound(b, b_end, ka, [&](const auto& elem, const auto& k) {
      return key_b(elem) < k;
    });
    if (it != b_end && key_b(*it) == ka) on_match(*a, *it);
  }
}

/// Galloping (exponential-search) intersection: walks the smaller range
/// [a, a_end) and locates each key in [b, b_end) by doubling steps from the
/// current position followed by a binary search over the final window.
/// Cost is O(|A| * log(gap)) probes, so it dominates merge-path when
/// |B| >> |A| -- the skewed case of the survey's wedge-closing step, where
/// a short pushed adjacency suffix meets a hub vertex's long list.
/// Requires random-access iterators for B.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void gallop_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                      OnMatch&& on_match) {
  while (a != a_end && b != b_end) {
    const auto ka = key_a(*a);
    if (key_b(*b) < ka) {
      // Gallop: after the loop, every element in [b, b+lo) is < ka and
      // b[hi] (if it exists) is >= ka; binary search the window between.
      const auto n = static_cast<std::size_t>(std::distance(b, b_end));
      std::size_t lo = 1;
      std::size_t hi = 1;
      while (hi < n && key_b(b[static_cast<std::ptrdiff_t>(hi)]) < ka) {
        lo = hi + 1;
        hi <<= 1;
      }
      if (hi > n) hi = n;
      b = std::lower_bound(b + static_cast<std::ptrdiff_t>(lo),
                           b + static_cast<std::ptrdiff_t>(hi), ka,
                           [&](const auto& elem, const auto& k) { return key_b(elem) < k; });
      if (b == b_end) return;
    }
    const auto kb = key_b(*b);
    if (ka < kb) {
      ++a;
    } else {
      on_match(*a, *b);
      ++a;
      ++b;
    }
  }
}

/// Size-ratio heuristic threshold above which galloping beats a linear
/// merge.  Crossover measured by bench_micro_intersection: merge-path does
/// |A|+|B| key comparisons, galloping ~|A|*log2(|B|/|A|) probes, so the
/// win kicks in once the ranges differ by about an order of magnitude.
inline constexpr std::size_t gallop_ratio_threshold = 16;

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define TRIPOLL_NOINLINE __attribute__((noinline))
#else
#define TRIPOLL_NOINLINE
#endif

// Outlined gallop entry for adaptive_intersect.  Inlining the galloping
// loops next to the merge loop measurably degrades the merge path's codegen
// (~1.5x on balanced inputs with gcc 12), so the cold skewed branch pays
// one call instead.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
TRIPOLL_NOINLINE void gallop_outlined(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a,
                                      KeyB key_b, OnMatch&& on_match) {
  gallop_intersect(a, a_end, b, b_end, key_a, key_b, std::forward<OnMatch>(on_match));
}

#undef TRIPOLL_NOINLINE

}  // namespace detail

/// Adaptive intersection used by the survey engine's wedge-closing step:
/// merge-path for similar sizes, galloping from the smaller side when the
/// sizes are skewed by >= gallop_ratio_threshold.  Match callback argument
/// order (a_elem, b_elem) is preserved in both regimes.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void adaptive_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                        OnMatch&& on_match) {
  const auto na = static_cast<std::size_t>(std::distance(a, a_end));
  const auto nb = static_cast<std::size_t>(std::distance(b, b_end));
  if (na == 0 || nb == 0) return;
  if (nb / na >= gallop_ratio_threshold) {
    detail::gallop_outlined(a, a_end, b, b_end, key_a, key_b,
                            std::forward<OnMatch>(on_match));
  } else if (na / nb >= gallop_ratio_threshold) {
    detail::gallop_outlined(b, b_end, a, a_end, key_b, key_a,
                            [&](const auto& eb, const auto& ea) { on_match(ea, eb); });
  } else {
    merge_path_intersect(a, a_end, b, b_end, key_a, key_b,
                         std::forward<OnMatch>(on_match));
  }
}

/// Hash intersection: builds a hash set over the keys of [b, b_end) and
/// probes with each element of [a, a_end).  Keys must be hashable.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void hash_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                    OnMatch&& on_match) {
  using key_type = std::decay_t<decltype(key_b(*b))>;
  std::unordered_map<key_type, ItB> index;
  index.reserve(static_cast<std::size_t>(std::distance(b, b_end)));
  for (auto it = b; it != b_end; ++it) index.emplace(key_b(*it), it);
  for (; a != a_end; ++a) {
    auto hit = index.find(key_a(*a));
    if (hit != index.end()) on_match(*a, *hit->second);
  }
}

}  // namespace tripoll::core
