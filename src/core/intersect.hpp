// intersect.hpp -- adjacency-list intersection kernels.
//
// The wedge-closing step intersects a pushed adjacency suffix with the
// target's adjacency list.  The paper uses merge-path intersection over
// degree-sorted lists (Sec. 4.3); binary-search and hashing variants are the
// two other canonical strategies in the distributed triangle-counting
// literature (Sec. 2) and are implemented for the baselines and for the
// `bench_micro_intersection` comparison.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <unordered_map>

namespace tripoll::core {

/// Merge-path intersection of two ranges sorted ascending under keys
/// extracted by `key_a`/`key_b` (comparable with <, ==).  Invokes
/// `on_match(a_elem, b_elem)` for every common key.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void merge_path_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                          OnMatch&& on_match) {
  while (a != a_end && b != b_end) {
    const auto ka = key_a(*a);
    const auto kb = key_b(*b);
    if (ka < kb) {
      ++a;
    } else if (kb < ka) {
      ++b;
    } else {
      on_match(*a, *b);
      ++a;
      ++b;
    }
  }
}

/// Binary-search intersection: for each element of [a, a_end), search the
/// sorted range [b, b_end).  Preferable when |A| << |B|.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void binary_search_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                             OnMatch&& on_match) {
  for (; a != a_end; ++a) {
    const auto ka = key_a(*a);
    auto it = std::lower_bound(b, b_end, ka, [&](const auto& elem, const auto& k) {
      return key_b(elem) < k;
    });
    if (it != b_end && key_b(*it) == ka) on_match(*a, *it);
  }
}

/// Hash intersection: builds a hash set over the keys of [b, b_end) and
/// probes with each element of [a, a_end).  Keys must be hashable.
template <typename ItA, typename ItB, typename KeyA, typename KeyB, typename OnMatch>
void hash_intersect(ItA a, ItA a_end, ItB b, ItB b_end, KeyA key_a, KeyB key_b,
                    OnMatch&& on_match) {
  using key_type = std::decay_t<decltype(key_b(*b))>;
  std::unordered_map<key_type, ItB> index;
  index.reserve(static_cast<std::size_t>(std::distance(b, b_end)));
  for (auto it = b; it != b_end; ++it) index.emplace(key_b(*it), it);
  for (; a != a_end; ++a) {
    auto hit = index.find(key_a(*a));
    if (hit != index.end()) on_match(*a, *hit->second);
  }
}

}  // namespace tripoll::core
