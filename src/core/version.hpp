// version.hpp -- library version string.
#pragma once

namespace tripoll {

/// Semantic version of the TriPoll reproduction library.
const char* version() noexcept;

}  // namespace tripoll
