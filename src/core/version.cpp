#include "core/version.hpp"

namespace tripoll {

const char* version() noexcept { return "1.0.0"; }

}  // namespace tripoll
