// analytics.hpp -- triangle-derived graph analytics built on the survey.
//
// The paper motivates local triangle participation counts through their
// applications: truss decomposition [15], clustering coefficients [7],
// community detection [11], role analysis [26].  This module packages the
// two primitives those applications share:
//   * per-vertex participation -> local clustering coefficients and the
//     global transitivity,
//   * per-edge participation ("support") -> the k-truss building block.
//
// Both are ordinary TriPoll survey plans whose callbacks accumulate into
// distributed counting sets.  Neither reads any metadata, so the plans
// project vertex AND edge metadata to graph::none: the traversal ships zero
// metadata bytes regardless of how rich the graph's metadata is.  When both
// primitives are wanted, `clustering_and_support` fuses them into a single
// traversal (one pass over |W+| instead of two).  The partition of
// counting-set keys matches the graph's vertex partition, so the final
// division by degree is rank-local.
//
// Parallel traversal: every entry point forwards `survey_options` (and so
// `threads` / TRIPOLL_THREADS) to the engine, which parallelizes the send
// stages of a frozen-graph run.  The callbacks here fire into distributed
// counting sets (`async_increment` = communicator traffic), so they are
// registered through plain `.add` and always fire on the owning thread --
// they must NOT be moved to `add_reduced`; see docs/THREADING.md.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "comm/counting_set.hpp"
#include "core/survey.hpp"
#include "graph/dodgr.hpp"

namespace tripoll::analytics {

/// Collective result of `clustering_coefficients`.
struct clustering_summary {
  std::uint64_t triangles = 0;        ///< global |T|
  std::uint64_t closed_wedges = 0;    ///< 3 |T|
  std::uint64_t total_wedges = 0;     ///< sum_v C(d(v), 2) (undirected wedges)
  double transitivity = 0.0;          ///< 3|T| / total_wedges
  double average_local_cc = 0.0;      ///< mean over vertices with d >= 2
  std::uint64_t eligible_vertices = 0;  ///< vertices with d >= 2
};

/// Normalized undirected edge key for support counting.
using edge_key = std::pair<graph::vertex_id, graph::vertex_id>;

[[nodiscard]] inline edge_key make_edge_key(graph::vertex_id a,
                                            graph::vertex_id b) noexcept {
  return a < b ? edge_key{a, b} : edge_key{b, a};
}

namespace detail {

/// Metadata-free callback crediting all three corner vertices.
struct vertex_count_cb {
  template <typename View>
  void operator()(const View& view, comm::counting_set<graph::vertex_id>& counts) const {
    counts.async_increment(view.p);
    counts.async_increment(view.q);
    counts.async_increment(view.r);
  }
};

/// Metadata-free callback crediting all three edges.
struct edge_support_cb {
  template <typename View>
  void operator()(const View& view, comm::counting_set<edge_key>& counts) const {
    counts.async_increment(make_edge_key(view.p, view.q));
    counts.async_increment(make_edge_key(view.p, view.r));
    counts.async_increment(make_edge_key(view.q, view.r));
  }
};

/// Reduce a finalized per-vertex participation set to the standard
/// clustering statistics (collective).
template <typename Graph>
[[nodiscard]] clustering_summary summarize_clustering(
    Graph& g, comm::counting_set<graph::vertex_id>& per_vertex,
    std::uint64_t triangles) {
  auto& c = g.comm();
  // Counting-set keys and graph vertices share the hash partition, so each
  // rank holds both T(v) and d(v) for its vertices; the division is local.
  std::uint64_t local_wedges = 0;
  std::uint64_t local_eligible = 0;
  double local_cc_sum = 0.0;
  {
    std::unordered_map<graph::vertex_id, std::uint64_t> counts;
    per_vertex.for_all_local(
        [&](const graph::vertex_id& v, std::uint64_t n) { counts[v] = n; });
    g.for_all_local([&](const graph::vertex_id& v, const auto& rec) {
      const std::uint64_t d = rec.degree;
      if (d < 2) return;
      const std::uint64_t wedges = d * (d - 1) / 2;
      local_wedges += wedges;
      ++local_eligible;
      const auto it = counts.find(v);
      const std::uint64_t tv = it == counts.end() ? 0 : it->second;
      local_cc_sum += static_cast<double>(tv) / static_cast<double>(wedges);
    });
  }

  clustering_summary s;
  s.triangles = triangles;
  s.closed_wedges = 3 * s.triangles;
  s.total_wedges = c.all_reduce_sum(local_wedges);
  s.eligible_vertices = c.all_reduce_sum(local_eligible);
  const double cc_sum = c.all_reduce_sum(local_cc_sum);
  s.transitivity = s.total_wedges > 0
                       ? static_cast<double>(s.closed_wedges) /
                             static_cast<double>(s.total_wedges)
                       : 0.0;
  s.average_local_cc =
      s.eligible_vertices > 0 ? cc_sum / static_cast<double>(s.eligible_vertices) : 0.0;
  return s;
}

}  // namespace detail

/// Collective: run a per-vertex participation survey and reduce it to the
/// standard clustering statistics.
template <typename Graph>
[[nodiscard]] clustering_summary clustering_coefficients(Graph& g,
                                                         survey_options opts = {}) {
  auto& c = g.comm();
  comm::counting_set<graph::vertex_id> per_vertex(c);
  const auto result = survey(g)
                          .project_vertex(drop_projection{})
                          .project_edge(drop_projection{})
                          .add(detail::vertex_count_cb{}, per_vertex)
                          .run(opts);
  per_vertex.finalize();
  return detail::summarize_clustering(g, per_vertex, result.total.triangles_found);
}

template <typename Graph>
[[nodiscard]] clustering_summary clustering_coefficients(Graph& g, survey_mode mode) {
  return clustering_coefficients(g, survey_options{mode});
}

/// Collective: count, for every edge, the number of triangles containing it
/// (the k-truss "support").  Results land in `support` (finalized).
template <typename Graph>
survey_result edge_support(Graph& g, comm::counting_set<edge_key>& support,
                           survey_options opts = {}) {
  const auto result = survey(g)
                          .project_vertex(drop_projection{})
                          .project_edge(drop_projection{})
                          .add(detail::edge_support_cb{}, support)
                          .run(opts);
  support.finalize();
  return result.slice(0);
}

template <typename Graph>
survey_result edge_support(Graph& g, comm::counting_set<edge_key>& support,
                           survey_mode mode) {
  return edge_support(g, support, survey_options{mode});
}

/// Collective: BOTH primitives from one fused traversal -- per-vertex
/// participation reduced to clustering statistics, per-edge support left in
/// `support` (finalized).  Halves the wedge traffic versus running
/// clustering_coefficients and edge_support back to back.
template <typename Graph>
[[nodiscard]] clustering_summary clustering_and_support(
    Graph& g, comm::counting_set<edge_key>& support, survey_options opts = {}) {
  auto& c = g.comm();
  comm::counting_set<graph::vertex_id> per_vertex(c);
  const auto result = survey(g)
                          .project_vertex(drop_projection{})
                          .project_edge(drop_projection{})
                          .add(detail::vertex_count_cb{}, per_vertex)
                          .add(detail::edge_support_cb{}, support)
                          .run(opts);
  per_vertex.finalize();
  support.finalize();
  return detail::summarize_clustering(g, per_vertex, result.total.triangles_found);
}

template <typename Graph>
[[nodiscard]] clustering_summary clustering_and_support(
    Graph& g, comm::counting_set<edge_key>& support, survey_mode mode) {
  return clustering_and_support(g, support, survey_options{mode});
}

}  // namespace tripoll::analytics
