// plan.hpp -- the declarative survey-plan API (what a traversal ships, and
// who consumes it).
//
// A plan is built fluently and describes a survey BEFORE the engine runs:
//
//   auto res = tripoll::survey(g)
//                  .project_vertex([](const profile& p) { return p.degree; })
//                  .project_edge([](const interaction& e) { return e.when; })
//                  .add(closure_time_callback{}, closure_ctx)
//                  .add(count_callback{}, count_ctx)
//                  .run({survey_mode::push_pull});
//
// Two properties fall out of the plan shape:
//
//   * Projections run SENDER-side.  The wedge-batch and pulled-adjacency
//     wire types are the *projected* metadata types, so a callback that
//     reads one 8-byte field of a rich struct ships 8 bytes per element,
//     not the struct (paper Sec. 5.9: metadata on the wire is the headline
//     cost of nontrivial surveys).  Projecting to `graph::none` ships zero
//     metadata bytes.
//   * All callbacks registered on one plan are FUSED into a single
//     dry-run/push/pull traversal: one pass over |W+|, one fan-out per
//     discovered triangle.  N analyses over the same graph pay the wedge
//     traffic once instead of N times.
//
// `run()` returns the shared traffic totals plus a per-callback
// `survey_result` slice.  Callbacks are carried in the plan BY VALUE, so
// small stateful functors (e.g. a threshold filter) are allowed; a
// bool-returning callback reports whether it fired, which its slice's
// `triangles_found` reflects.
//
// Thread-safety contract (full statement: docs/THREADING.md): a plan, its
// callbacks and its contexts are rank-local.  With survey_options::threads
// == 1 the engine invokes callbacks only from the owning rank's thread.
// With threads > 1, `.add()` entries still fire only on the owning thread;
// `.add_reduced()` entries may fire on worker threads, each into its own
// default-constructed per-thread context slice, merged into the registered
// context by the declared reduction at the end of the run (and, for
// reduce_scope::global, all_reduced across ranks).  Contexts are held by
// pointer and must outlive `run()`.
//
// This header defines the plan, result and view types; the engine that
// executes a plan lives in core/survey.hpp (include that to call `.run()`).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll {

/// Execution strategy for a survey.
enum class survey_mode {
  push_only,  ///< Alg. 1: always push adjacency suffixes
  push_pull,  ///< Sec. 4.4: dry-run + per-(rank,vertex) push-vs-pull choice
};

struct survey_options {
  survey_mode mode = survey_mode::push_pull;
  /// Worker threads per rank for the traversal (frozen graphs only; the
  /// mutable map always walks single-threaded).  0 = read TRIPOLL_THREADS
  /// from the environment, defaulting to 1.  Results -- triangle counts,
  /// volume_bytes, messages, per-callback fire counts -- are bit-identical
  /// across thread counts; see docs/THREADING.md.
  int threads = 0;
  /// Pin the engine's threads round-robin over hardware threads (NUMA
  /// locality for the arena-chunk scans).  false additionally consults the
  /// TRIPOLL_PIN environment variable (unset/"0" means unpinned); a no-op
  /// on platforms without thread affinity.  The owning (calling) thread is
  /// never pinned -- only spawned workers.  See docs/THREADING.md.
  bool pin_threads = false;
};

/// How an `add_reduced` context is combined at the end of a run.
enum class reduce_scope {
  threads,  ///< merge per-thread slices into the registered context only
  global,   ///< ...then all_reduce the context across ranks too
};

/// Wall time and measured traffic of one survey phase.
struct phase_metrics {
  double seconds = 0.0;            ///< max over ranks
  std::uint64_t volume_bytes = 0;  ///< remote bytes, summed over ranks
  std::uint64_t messages = 0;      ///< logical RPCs, summed over ranks
};

/// Collective result of a survey traversal (identical on every rank).
struct survey_result {
  phase_metrics dry_run;  ///< push_pull only: proposal/decision pass
  phase_metrics push;     ///< wedge pushing (the only phase of push_only)
  phase_metrics pull;     ///< push_pull only: coalesced adjacency pulls
  phase_metrics total;

  std::uint64_t pulls_granted = 0;      ///< (rank, q) pull grants, global
  std::uint64_t push_batches = 0;       ///< wedge-batch messages, global
  std::uint64_t wedge_candidates = 0;   ///< candidate r vertices examined
  std::uint64_t triangles_found = 0;    ///< engine-side cross-check counter
  std::uint64_t proposals_filtered = 0; ///< hopeless pull proposals never sent
  std::uint64_t bitmap_batches = 0;     ///< batches closed via hub bitmap probe
  std::uint64_t list_batches = 0;       ///< batches closed via merge/gallop

  [[nodiscard]] double pulls_per_rank(int nranks) const noexcept {
    return nranks > 0 ? static_cast<double>(pulls_granted) / nranks : 0.0;
  }
};

/// Result of running a plan with N callbacks: the shared traversal metrics
/// plus how often each callback fired (globally).  `slice(i)` renders
/// callback i's view of the run as a classic survey_result -- the traffic
/// columns are the shared totals, `triangles_found` is that callback's fire
/// count (== the engine's triangle count for unconditional callbacks, fewer
/// for bool-returning filters).
template <std::size_t N>
struct plan_result {
  survey_result total;                         ///< shared traversal metrics
  std::array<std::uint64_t, N> invocations{};  ///< per-callback fires, global

  [[nodiscard]] survey_result slice(std::size_t i) const {
    survey_result s = total;
    s.triangles_found = invocations[i];
    return s;
  }
};

/// How a triangle_view member refers to metadata of wire type T: string
/// views are held by value (they already are references into the drained
/// payload), everything else by const reference into rank-local storage or
/// the received message.
template <typename T>
using meta_ref =
    std::conditional_t<std::is_same_v<T, std::string_view>, std::string_view, const T&>;

/// The six pieces of (projected) metadata of a discovered triangle Δpqr,
/// plus the vertex ids.  Members are valid only for the duration of the
/// callback.  For graphs with std::string metadata the members arrive as
/// std::string_view pointing into the drained payload -- copy out to keep.
template <typename VertexMeta, typename EdgeMeta>
struct triangle_view {
  graph::vertex_id p, q, r;
  meta_ref<VertexMeta> meta_p;
  meta_ref<VertexMeta> meta_q;
  meta_ref<VertexMeta> meta_r;
  meta_ref<EdgeMeta> meta_pq;
  meta_ref<EdgeMeta> meta_pr;
  meta_ref<EdgeMeta> meta_qr;
};

/// Default projection: ship the stored metadata unchanged.
struct identity_projection {
  template <typename T>
  [[nodiscard]] const T& operator()(const T& v) const noexcept {
    return v;
  }
};

/// Projection that strips metadata entirely.  graph::none is empty, so the
/// projected field occupies zero wire bytes -- a plain counting survey over
/// a rich-metadata graph ships exactly what a metadata-free graph would.
struct drop_projection {
  template <typename T>
  [[nodiscard]] graph::none operator()(const T&) const noexcept {
    return {};
  }
};

namespace core::detail {

/// Sender-side time-window predicate of a plan (plan.window(t0, t1)):
/// half-open [t0, t1) over the STORED edge metadata read as a timestamp.
/// Inactive by default; carried by value through every chaining call.
struct plan_window {
  bool active = false;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;

  [[nodiscard]] bool admits(std::uint64_t ts) const noexcept {
    return !active || (ts >= t0 && ts < t1);
  }
};

/// Receive-side wire type of a projected value: owning strings travel as
/// length+bytes but DESERIALIZE as std::string_view into the drained
/// payload (no copy); everything else round-trips as itself.
template <typename P>
struct wire_type {
  using type = P;
};
template <>
struct wire_type<std::string> {
  using type = std::string_view;
};
template <typename P>
using wire_type_t = typename wire_type<P>::type;

/// Shared callback dispatch: cb(comm, view, ctx) or cb(view, ctx), each
/// either bool-returning ("did it fire?") or void (always fires).
template <typename Callback, typename View, typename Context>
bool dispatch_callback(Callback& callback, comm::communicator& c, const View& view,
                       Context& context) {
  if constexpr (std::is_invocable_v<Callback&, comm::communicator&, const View&,
                                    Context&>) {
    if constexpr (std::is_same_v<std::invoke_result_t<Callback&, comm::communicator&,
                                                      const View&, Context&>,
                                 bool>) {
      return callback(c, view, context);
    } else {
      callback(c, view, context);
      return true;
    }
  } else {
    static_assert(std::is_invocable_v<Callback&, const View&, Context&>,
                  "survey callback must be callable as cb(view, ctx) or "
                  "cb(comm, view, ctx)");
    if constexpr (std::is_same_v<std::invoke_result_t<Callback&, const View&, Context&>,
                                 bool>) {
      return callback(view, context);
    } else {
      callback(view, context);
      return true;
    }
  }
}

/// One (callback, context) registration of a plan.
template <typename Callback, typename Context>
struct callback_entry {
  static constexpr bool reduced = false;
  using callback_type = Callback;
  using context_type = Context;
  Callback callback;
  Context* context;

  /// Invoke on one triangle; returns whether the callback "fired" (a
  /// bool-returning callback can decline, e.g. a threshold filter).
  template <typename View>
  bool invoke(comm::communicator& c, const View& view) {
    return dispatch_callback(callback, c, view, *context);
  }
};

/// One `.add_reduced()` registration: a callback plus the reduction that
/// folds per-thread context slices (and, for reduce_scope::global, the
/// per-rank contexts) back into the registered context.
template <typename Callback, typename Context, typename Reduce, reduce_scope Scope>
struct reduced_callback_entry {
  static constexpr bool reduced = true;
  static constexpr reduce_scope scope = Scope;
  using callback_type = Callback;
  using context_type = Context;

  Callback callback;
  Context* context;
  Reduce reduce;

  template <typename View>
  bool invoke(comm::communicator& c, const View& view) {
    return dispatch_callback(callback, c, view, *context);
  }

  /// Worker-thread fire into a per-thread slice: no communicator (workers
  /// must never touch comm state; see docs/THREADING.md).
  template <typename View>
  bool invoke_on(const View& view, Context& slice) {
    if constexpr (std::is_same_v<std::invoke_result_t<Callback&, const View&, Context&>,
                                 bool>) {
      return callback(view, slice);
    } else {
      callback(view, slice);
      return true;
    }
  }
};

/// A callback's self-declared minimal projections (core/callbacks.hpp's
/// `using vertex_projection = ...` convention).  Callbacks that declare
/// nothing conservatively require identity (ship everything).
template <typename Callback, typename = void>
struct declared_vertex_projection {
  using type = identity_projection;
};
template <typename Callback>
struct declared_vertex_projection<Callback, std::void_t<typename Callback::vertex_projection>> {
  using type = typename Callback::vertex_projection;
};
template <typename Callback, typename = void>
struct declared_edge_projection {
  using type = identity_projection;
};
template <typename Callback>
struct declared_edge_projection<Callback, std::void_t<typename Callback::edge_projection>> {
  using type = typename Callback::edge_projection;
};

/// Least-upper-bound of two declared projections for a FUSED traversal: the
/// wire must carry enough for both callbacks.  Equal demands collapse; drop
/// (needs nothing) defers to the other side; two distinct non-trivial
/// demands widen to identity -- there is one wire type per metadata kind,
/// so the only projection satisfying both is the full value.
template <typename A, typename B>
struct proj_union {
  using type = identity_projection;
};
template <typename A>
struct proj_union<A, A> {
  using type = A;
};
template <typename A>
struct proj_union<drop_projection, A> {
  using type = A;
};
template <typename A>
struct proj_union<A, drop_projection> {
  using type = A;
};
template <>
struct proj_union<drop_projection, drop_projection> {
  using type = drop_projection;
};

/// Fold proj_union over every callback of a plan.
template <typename... Ps>
struct proj_fold {
  using type = drop_projection;  // no callbacks: nothing demanded
};
template <typename P>
struct proj_fold<P> {
  using type = P;
};
template <typename A, typename B, typename... Rest>
struct proj_fold<A, B, Rest...> : proj_fold<typename proj_union<A, B>::type, Rest...> {};

/// Is this entry eligible to fire on worker threads for triangle views of
/// type View?  Plain `.add()` entries never are (no declared reduction);
/// reduced entries are when their context can be default-constructed as a
/// per-thread slice and the callback runs without a communicator.
template <typename Entry, typename View>
inline constexpr bool entry_parallel_ready = false;

template <typename Callback, typename Context, typename Reduce, reduce_scope Scope,
          typename View>
inline constexpr bool
    entry_parallel_ready<reduced_callback_entry<Callback, Context, Reduce, Scope>, View> =
        std::is_default_constructible_v<Context> &&
        std::is_invocable_v<Callback&, const View&, Context&>;

/// Per-thread slice storage for one entry: the context type for reduced
/// entries, an empty placeholder for plain ones (never touched -- a plan
/// with any plain entry is not parallel-fire capable).
template <typename Entry>
struct slice_of {
  struct type {};
};
template <typename Callback, typename Context, typename Reduce, reduce_scope Scope>
struct slice_of<reduced_callback_entry<Callback, Context, Reduce, Scope>> {
  using type = Context;
};

// Defined in core/survey.hpp (constructs the engine and runs it); declared
// here so survey_plan::run() can be written against it.
template <typename Graph, typename Plan>
[[nodiscard]] plan_result<Plan::num_callbacks> run_plan(Graph& g, Plan& plan,
                                                        survey_options opts);

}  // namespace core::detail

/// A composable, typed survey description: the graph, a sender-side
/// projection per metadata kind, and any number of (callback, context)
/// pairs fused into one traversal.  Built through `tripoll::survey(g)`.
/// `Graph` is any storage form exposing the DODGr read API -- the mutable
/// `graph::dodgr` or the frozen CSR `graph::frozen_dodgr`.
template <typename Graph, typename VProj = identity_projection,
          typename EProj = identity_projection, typename... Entries>
class survey_plan {
 public:
  using graph_type = Graph;
  using VertexMeta = typename Graph::vertex_meta_type;
  using EdgeMeta = typename Graph::edge_meta_type;
  using vertex_projection_type = VProj;
  using edge_projection_type = EProj;

  static_assert(std::is_invocable_v<const VProj&, const VertexMeta&>,
                "vertex projection must be callable on const VertexMeta&");
  static_assert(std::is_invocable_v<const EProj&, const EdgeMeta&>,
                "edge projection must be callable on const EdgeMeta&");

  /// What the projections produce (and, modulo the string -> string_view
  /// receive mapping, what travels on the wire).
  using projected_vertex_type =
      std::remove_cvref_t<std::invoke_result_t<const VProj&, const VertexMeta&>>;
  using projected_edge_type =
      std::remove_cvref_t<std::invoke_result_t<const EProj&, const EdgeMeta&>>;

  static constexpr std::size_t num_callbacks = sizeof...(Entries);

  survey_plan(graph_type& g, VProj vproj, EProj eproj, std::tuple<Entries...> entries,
              core::detail::plan_window window = {})
      : graph_(&g),
        vproj_(std::move(vproj)),
        eproj_(std::move(eproj)),
        entries_(std::move(entries)),
        window_(window) {}

  /// Replace the vertex-metadata projection.  Applied sender-side; the
  /// wedge/pull wire types carry the projected type.
  template <typename F>
  [[nodiscard]] auto project_vertex(F fn) const {
    return survey_plan<Graph, F, EProj, Entries...>(*graph_, std::move(fn), eproj_,
                                                    entries_, window_);
  }

  /// Replace the edge-metadata projection (see project_vertex).
  template <typename F>
  [[nodiscard]] auto project_edge(F fn) const {
    return survey_plan<Graph, VProj, F, Entries...>(*graph_, vproj_, std::move(fn),
                                                    entries_, window_);
  }

  /// Restrict the survey to edges whose STORED metadata, read as a
  /// timestamp, falls in the half-open window [t0, t1).  The filter is
  /// applied at wedge-GENERATION time (sender-side, before projection), so
  /// wedge batches, pulled adjacencies and the wire volume all shrink with
  /// the window; closing edges are filtered at the intersection.  A
  /// triangle survives iff all three of its edges are in-window (SAM's
  /// isExpired rule, PartialTriangle machinery).  Requires the graph's
  /// edge metadata to convert to std::uint64_t.
  [[nodiscard]] survey_plan window(std::uint64_t t0, std::uint64_t t1) const {
    static_assert(std::is_convertible_v<EdgeMeta, std::uint64_t>,
                  "plan.window(t0, t1) needs edge metadata readable as a "
                  "uint64_t timestamp (e.g. a u64 edge-meta graph); "
                  "metadata-free graphs cannot be windowed");
    survey_plan p(*this);
    p.window_ = core::detail::plan_window{true, t0, t1};
    return p;
  }

  /// What the registered callbacks jointly demand on the wire: the
  /// proj_union fold of every callback's declared vertex/edge projection
  /// (core/callbacks.hpp convention; undeclared counts as identity).
  using inferred_vertex_projection = typename core::detail::proj_fold<
      typename core::detail::declared_vertex_projection<
          typename Entries::callback_type>::type...>::type;
  using inferred_edge_projection = typename core::detail::proj_fold<
      typename core::detail::declared_edge_projection<
          typename Entries::callback_type>::type...>::type;

  /// Replace both projections with the union of what the registered
  /// callbacks declare they need: equal demands collapse, drop defers,
  /// distinct non-trivial demands widen to identity.  Call AFTER the last
  /// `.add()`; explicit `.project_*()` calls afterwards still override.
  /// Opt-in (never applied implicitly by run()) so a plan's wire volume
  /// only changes when the caller asks for inference.
  [[nodiscard]] auto infer_projections() const {
    using VP = inferred_vertex_projection;
    using EP = inferred_edge_projection;
    return survey_plan<Graph, VP, EP, Entries...>(*graph_, VP{}, EP{}, entries_,
                                                  window_);
  }

  /// Register one (callback, context) pair.  The callback is stored by
  /// value (small stateful functors welcome); `context` is held by pointer
  /// and must outlive run().
  template <typename Callback, typename Context>
  [[nodiscard]] auto add(Callback callback, Context& context) const {
    using entry = core::detail::callback_entry<Callback, Context>;
    return survey_plan<Graph, VProj, EProj, Entries..., entry>(
        *graph_, vproj_, eproj_,
        std::tuple_cat(entries_,
                       std::make_tuple(entry{std::move(callback), &context})),
        window_);
  }

  /// Register a (callback, context) pair WITH a declared reduction over
  /// context state.  `reduce` must be a stateless binary op
  /// `Context(const Context&, const Context&)`.  Two things follow:
  ///
  ///   * parallel traversal: if Context is default-constructible and the
  ///     callback runs as cb(view, ctx) (no communicator), worker threads
  ///     fire into per-thread slices that `reduce` folds into `context` by
  ///     the end of run() (docs/THREADING.md);
  ///   * Scope == reduce_scope::global additionally all_reduces the folded
  ///     context across ranks (even in single-threaded runs), so run()
  ///     returns with `context` already holding the global result -- the
  ///     plan-level twin of count_context::global_count().
  template <reduce_scope Scope = reduce_scope::threads, typename Callback,
            typename Context, typename Reduce>
  [[nodiscard]] auto add_reduced(Callback callback, Context& context,
                                 Reduce reduce) const {
    static_assert(std::is_empty_v<Reduce>,
                  "plan reductions must be stateless (captureless lambda or "
                  "empty functor); global scope runs them through all_reduce");
    using entry = core::detail::reduced_callback_entry<Callback, Context, Reduce, Scope>;
    return survey_plan<Graph, VProj, EProj, Entries..., entry>(
        *graph_, vproj_, eproj_,
        std::tuple_cat(entries_, std::make_tuple(entry{std::move(callback), &context,
                                                       std::move(reduce)})),
        window_);
  }

  /// Collective: execute the plan as one fused traversal.  Requires
  /// core/survey.hpp (the engine) to be included.
  [[nodiscard]] plan_result<num_callbacks> run(survey_options opts = {}) {
    static_assert(num_callbacks >= 1,
                  "a survey plan needs at least one .add(callback, context)");
    return core::detail::run_plan(*graph_, *this, opts);
  }

  // --- engine interface ------------------------------------------------------

  [[nodiscard]] graph_type& graph() const noexcept { return *graph_; }
  [[nodiscard]] const VProj& vertex_proj() const noexcept { return vproj_; }
  [[nodiscard]] const EProj& edge_proj() const noexcept { return eproj_; }
  [[nodiscard]] const core::detail::plan_window& time_window() const noexcept {
    return window_;
  }

  /// Fan one discovered triangle out to every registered callback;
  /// `fired[i]` accumulates the callbacks that actually ran.
  template <typename View>
  void fire(comm::communicator& c, const View& view,
            std::array<std::uint64_t, num_callbacks>& fired) {
    std::apply(
        [&](auto&... entry) {
          std::size_t i = 0;
          ((fired[i] += entry.invoke(c, view) ? 1u : 0u, ++i), ...);
        },
        entries_);
  }

  /// May every entry of this plan fire on a worker thread for views of type
  /// View?  If not, a parallel run still parallelizes the send stages but
  /// funnels every fire through the owning thread.
  template <typename View>
  static constexpr bool parallel_fire_capable =
      (core::detail::entry_parallel_ready<Entries, View> && ...);

  /// One worker thread's context slices, one element per entry (empty
  /// placeholders for plain entries).
  using slice_tuple = std::tuple<typename core::detail::slice_of<Entries>::type...>;

  [[nodiscard]] slice_tuple make_slices() const { return slice_tuple{}; }

  /// Worker-thread fire: every entry fires into its slice, never into the
  /// registered context, and never sees the communicator.  Only
  /// instantiated when parallel_fire_capable<View>.
  template <typename View>
  void fire_slices(const View& view, slice_tuple& slices,
                   std::array<std::uint64_t, num_callbacks>& fired) {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((fired[I] +=
        std::get<I>(entries_).invoke_on(view, std::get<I>(slices)) ? 1u : 0u),
       ...);
    }(std::make_index_sequence<num_callbacks>{});
  }

  /// Owning-thread merge point: fold every worker's slices into the
  /// registered contexts, in worker-index order (deterministic for any
  /// reduction; bit-identical across runs for associative+commutative ones).
  void merge_slices(std::vector<slice_tuple>& all_slices) {
    for (auto& slices : all_slices) {
      [&]<std::size_t... I>(std::index_sequence<I...>) {
        (merge_one(std::get<I>(entries_), std::get<I>(slices)), ...);
      }(std::make_index_sequence<num_callbacks>{});
    }
  }

  /// End-of-run hook, called by the engine on EVERY run (any thread count,
  /// either storage form): all_reduce the contexts of reduce_scope::global
  /// entries so they return holding globally-reduced state.
  void finish_reductions(comm::communicator& c) {
    std::apply([&](auto&... entry) { (finish_one(c, entry), ...); }, entries_);
  }

 private:
  template <typename Entry, typename Slice>
  static void merge_one(Entry& entry, Slice& slice) {
    if constexpr (Entry::reduced) {
      *entry.context = entry.reduce(std::as_const(*entry.context), std::as_const(slice));
    } else {
      (void)entry;
      (void)slice;
    }
  }

  template <typename Entry>
  static void finish_one(comm::communicator& c, Entry& entry) {
    if constexpr (Entry::reduced) {
      if constexpr (Entry::scope == reduce_scope::global) {
        *entry.context = c.all_reduce(*entry.context, entry.reduce);
      }
    } else {
      (void)c;
      (void)entry;
    }
  }

  graph_type* graph_;
  VProj vproj_;
  EProj eproj_;
  std::tuple<Entries...> entries_;
  core::detail::plan_window window_{};
};

/// Entry point of the plan API: start a survey description over `g` with
/// identity projections and no callbacks yet.  `g` may be a mutable
/// `graph::dodgr` or a frozen `graph::frozen_dodgr` (whose arenas already
/// hold freeze-time-projected metadata).
template <typename Graph>
  requires requires {
    typename Graph::vertex_meta_type;
    typename Graph::edge_meta_type;
    typename Graph::record_type;
  }
[[nodiscard]] auto survey(Graph& g) {
  return survey_plan<Graph>(g, identity_projection{}, identity_projection{},
                            std::tuple<>{});
}

}  // namespace tripoll
