// plan.hpp -- the declarative survey-plan API (what a traversal ships, and
// who consumes it).
//
// A plan is built fluently and describes a survey BEFORE the engine runs:
//
//   auto res = tripoll::survey(g)
//                  .project_vertex([](const profile& p) { return p.degree; })
//                  .project_edge([](const interaction& e) { return e.when; })
//                  .add(closure_time_callback{}, closure_ctx)
//                  .add(count_callback{}, count_ctx)
//                  .run({survey_mode::push_pull});
//
// Two properties fall out of the plan shape:
//
//   * Projections run SENDER-side.  The wedge-batch and pulled-adjacency
//     wire types are the *projected* metadata types, so a callback that
//     reads one 8-byte field of a rich struct ships 8 bytes per element,
//     not the struct (paper Sec. 5.9: metadata on the wire is the headline
//     cost of nontrivial surveys).  Projecting to `graph::none` ships zero
//     metadata bytes.
//   * All callbacks registered on one plan are FUSED into a single
//     dry-run/push/pull traversal: one pass over |W+|, one fan-out per
//     discovered triangle.  N analyses over the same graph pay the wedge
//     traffic once instead of N times.
//
// `run()` returns the shared traffic totals plus a per-callback
// `survey_result` slice.  Callbacks are carried in the plan BY VALUE, so
// small stateful functors (e.g. a threshold filter) are allowed; a
// bool-returning callback reports whether it fired, which its slice's
// `triangles_found` reflects.
//
// Thread-safety contract: a plan, its callbacks and its contexts are
// rank-local.  The engine invokes callbacks only from the owning rank's
// thread (handlers run on the destination rank), so callback/context state
// needs no synchronization; sharing one context object across ranks of the
// inproc backend is the caller's race to lose.  Contexts are held by
// pointer and must outlive `run()`.
//
// This header defines the plan, result and view types; the engine that
// executes a plan lives in core/survey.hpp (include that to call `.run()`).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>

#include "comm/communicator.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll {

/// Execution strategy for a survey.
enum class survey_mode {
  push_only,  ///< Alg. 1: always push adjacency suffixes
  push_pull,  ///< Sec. 4.4: dry-run + per-(rank,vertex) push-vs-pull choice
};

struct survey_options {
  survey_mode mode = survey_mode::push_pull;
};

/// Wall time and measured traffic of one survey phase.
struct phase_metrics {
  double seconds = 0.0;            ///< max over ranks
  std::uint64_t volume_bytes = 0;  ///< remote bytes, summed over ranks
  std::uint64_t messages = 0;      ///< logical RPCs, summed over ranks
};

/// Collective result of a survey traversal (identical on every rank).
struct survey_result {
  phase_metrics dry_run;  ///< push_pull only: proposal/decision pass
  phase_metrics push;     ///< wedge pushing (the only phase of push_only)
  phase_metrics pull;     ///< push_pull only: coalesced adjacency pulls
  phase_metrics total;

  std::uint64_t pulls_granted = 0;      ///< (rank, q) pull grants, global
  std::uint64_t push_batches = 0;       ///< wedge-batch messages, global
  std::uint64_t wedge_candidates = 0;   ///< candidate r vertices examined
  std::uint64_t triangles_found = 0;    ///< engine-side cross-check counter
  std::uint64_t proposals_filtered = 0; ///< hopeless pull proposals never sent

  [[nodiscard]] double pulls_per_rank(int nranks) const noexcept {
    return nranks > 0 ? static_cast<double>(pulls_granted) / nranks : 0.0;
  }
};

/// Result of running a plan with N callbacks: the shared traversal metrics
/// plus how often each callback fired (globally).  `slice(i)` renders
/// callback i's view of the run as a classic survey_result -- the traffic
/// columns are the shared totals, `triangles_found` is that callback's fire
/// count (== the engine's triangle count for unconditional callbacks, fewer
/// for bool-returning filters).
template <std::size_t N>
struct plan_result {
  survey_result total;                         ///< shared traversal metrics
  std::array<std::uint64_t, N> invocations{};  ///< per-callback fires, global

  [[nodiscard]] survey_result slice(std::size_t i) const {
    survey_result s = total;
    s.triangles_found = invocations[i];
    return s;
  }
};

/// How a triangle_view member refers to metadata of wire type T: string
/// views are held by value (they already are references into the drained
/// payload), everything else by const reference into rank-local storage or
/// the received message.
template <typename T>
using meta_ref =
    std::conditional_t<std::is_same_v<T, std::string_view>, std::string_view, const T&>;

/// The six pieces of (projected) metadata of a discovered triangle Δpqr,
/// plus the vertex ids.  Members are valid only for the duration of the
/// callback.  For graphs with std::string metadata the members arrive as
/// std::string_view pointing into the drained payload -- copy out to keep.
template <typename VertexMeta, typename EdgeMeta>
struct triangle_view {
  graph::vertex_id p, q, r;
  meta_ref<VertexMeta> meta_p;
  meta_ref<VertexMeta> meta_q;
  meta_ref<VertexMeta> meta_r;
  meta_ref<EdgeMeta> meta_pq;
  meta_ref<EdgeMeta> meta_pr;
  meta_ref<EdgeMeta> meta_qr;
};

/// Default projection: ship the stored metadata unchanged.
struct identity_projection {
  template <typename T>
  [[nodiscard]] const T& operator()(const T& v) const noexcept {
    return v;
  }
};

/// Projection that strips metadata entirely.  graph::none is empty, so the
/// projected field occupies zero wire bytes -- a plain counting survey over
/// a rich-metadata graph ships exactly what a metadata-free graph would.
struct drop_projection {
  template <typename T>
  [[nodiscard]] graph::none operator()(const T&) const noexcept {
    return {};
  }
};

namespace core::detail {

/// Receive-side wire type of a projected value: owning strings travel as
/// length+bytes but DESERIALIZE as std::string_view into the drained
/// payload (no copy); everything else round-trips as itself.
template <typename P>
struct wire_type {
  using type = P;
};
template <>
struct wire_type<std::string> {
  using type = std::string_view;
};
template <typename P>
using wire_type_t = typename wire_type<P>::type;

/// One (callback, context) registration of a plan.
template <typename Callback, typename Context>
struct callback_entry {
  Callback callback;
  Context* context;

  /// Invoke on one triangle; returns whether the callback "fired" (a
  /// bool-returning callback can decline, e.g. a threshold filter).
  template <typename View>
  bool invoke(comm::communicator& c, const View& view) {
    if constexpr (std::is_invocable_v<Callback&, comm::communicator&, const View&,
                                      Context&>) {
      if constexpr (std::is_same_v<std::invoke_result_t<Callback&, comm::communicator&,
                                                        const View&, Context&>,
                                   bool>) {
        return callback(c, view, *context);
      } else {
        callback(c, view, *context);
        return true;
      }
    } else {
      static_assert(std::is_invocable_v<Callback&, const View&, Context&>,
                    "survey callback must be callable as cb(view, ctx) or "
                    "cb(comm, view, ctx)");
      if constexpr (std::is_same_v<std::invoke_result_t<Callback&, const View&, Context&>,
                                   bool>) {
        return callback(view, *context);
      } else {
        callback(view, *context);
        return true;
      }
    }
  }
};

// Defined in core/survey.hpp (constructs the engine and runs it); declared
// here so survey_plan::run() can be written against it.
template <typename Graph, typename Plan>
[[nodiscard]] plan_result<Plan::num_callbacks> run_plan(Graph& g, Plan& plan,
                                                        survey_options opts);

}  // namespace core::detail

/// A composable, typed survey description: the graph, a sender-side
/// projection per metadata kind, and any number of (callback, context)
/// pairs fused into one traversal.  Built through `tripoll::survey(g)`.
/// `Graph` is any storage form exposing the DODGr read API -- the mutable
/// `graph::dodgr` or the frozen CSR `graph::frozen_dodgr`.
template <typename Graph, typename VProj = identity_projection,
          typename EProj = identity_projection, typename... Entries>
class survey_plan {
 public:
  using graph_type = Graph;
  using VertexMeta = typename Graph::vertex_meta_type;
  using EdgeMeta = typename Graph::edge_meta_type;
  using vertex_projection_type = VProj;
  using edge_projection_type = EProj;

  static_assert(std::is_invocable_v<const VProj&, const VertexMeta&>,
                "vertex projection must be callable on const VertexMeta&");
  static_assert(std::is_invocable_v<const EProj&, const EdgeMeta&>,
                "edge projection must be callable on const EdgeMeta&");

  /// What the projections produce (and, modulo the string -> string_view
  /// receive mapping, what travels on the wire).
  using projected_vertex_type =
      std::remove_cvref_t<std::invoke_result_t<const VProj&, const VertexMeta&>>;
  using projected_edge_type =
      std::remove_cvref_t<std::invoke_result_t<const EProj&, const EdgeMeta&>>;

  static constexpr std::size_t num_callbacks = sizeof...(Entries);

  survey_plan(graph_type& g, VProj vproj, EProj eproj, std::tuple<Entries...> entries)
      : graph_(&g),
        vproj_(std::move(vproj)),
        eproj_(std::move(eproj)),
        entries_(std::move(entries)) {}

  /// Replace the vertex-metadata projection.  Applied sender-side; the
  /// wedge/pull wire types carry the projected type.
  template <typename F>
  [[nodiscard]] auto project_vertex(F fn) const {
    return survey_plan<Graph, F, EProj, Entries...>(*graph_, std::move(fn), eproj_,
                                                    entries_);
  }

  /// Replace the edge-metadata projection (see project_vertex).
  template <typename F>
  [[nodiscard]] auto project_edge(F fn) const {
    return survey_plan<Graph, VProj, F, Entries...>(*graph_, vproj_, std::move(fn),
                                                    entries_);
  }

  /// Register one (callback, context) pair.  The callback is stored by
  /// value (small stateful functors welcome); `context` is held by pointer
  /// and must outlive run().
  template <typename Callback, typename Context>
  [[nodiscard]] auto add(Callback callback, Context& context) const {
    using entry = core::detail::callback_entry<Callback, Context>;
    return survey_plan<Graph, VProj, EProj, Entries..., entry>(
        *graph_, vproj_, eproj_,
        std::tuple_cat(entries_,
                       std::make_tuple(entry{std::move(callback), &context})));
  }

  /// Collective: execute the plan as one fused traversal.  Requires
  /// core/survey.hpp (the engine) to be included.
  [[nodiscard]] plan_result<num_callbacks> run(survey_options opts = {}) {
    static_assert(num_callbacks >= 1,
                  "a survey plan needs at least one .add(callback, context)");
    return core::detail::run_plan(*graph_, *this, opts);
  }

  // --- engine interface ------------------------------------------------------

  [[nodiscard]] graph_type& graph() const noexcept { return *graph_; }
  [[nodiscard]] const VProj& vertex_proj() const noexcept { return vproj_; }
  [[nodiscard]] const EProj& edge_proj() const noexcept { return eproj_; }

  /// Fan one discovered triangle out to every registered callback;
  /// `fired[i]` accumulates the callbacks that actually ran.
  template <typename View>
  void fire(comm::communicator& c, const View& view,
            std::array<std::uint64_t, num_callbacks>& fired) {
    std::apply(
        [&](auto&... entry) {
          std::size_t i = 0;
          ((fired[i] += entry.invoke(c, view) ? 1u : 0u, ++i), ...);
        },
        entries_);
  }

 private:
  graph_type* graph_;
  VProj vproj_;
  EProj eproj_;
  std::tuple<Entries...> entries_;
};

/// Entry point of the plan API: start a survey description over `g` with
/// identity projections and no callbacks yet.  `g` may be a mutable
/// `graph::dodgr` or a frozen `graph::frozen_dodgr` (whose arenas already
/// hold freeze-time-projected metadata).
template <typename Graph>
  requires requires {
    typename Graph::vertex_meta_type;
    typename Graph::edge_meta_type;
    typename Graph::record_type;
  }
[[nodiscard]] auto survey(Graph& g) {
  return survey_plan<Graph>(g, identity_projection{}, identity_projection{},
                            std::tuple<>{});
}

}  // namespace tripoll
