// label_survey -- the paper's Alg. 3: distribution of maximum edge labels
// over triangles whose three vertex labels are pairwise distinct.
//
// Vertices carry a small categorical label (think buyer/seller/moderator),
// edges carry an interaction-type label.  The survey asks: "among triangles
// of three differently-labeled users, which interaction type dominates?"
// -- exactly the style of exploratory question TriPoll's callback interface
// is built for.
//
// Usage: label_survey [scale] [ranks]
#include <cstdio>
#include <cstdlib>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "serial/hash.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

constexpr std::uint32_t kVertexLabels = 4;  // e.g. buyer/seller/both/moderator
constexpr std::uint32_t kEdgeLabels = 6;    // e.g. message/purchase/rating/...

std::uint32_t vertex_label(graph::vertex_id v) {
  return static_cast<std::uint32_t>(tripoll::serial::splitmix64(v ^ 0xAB) % kVertexLabels);
}

std::uint32_t edge_label(graph::vertex_id u, graph::vertex_id v) {
  const auto key = tripoll::serial::hash_combine(tripoll::serial::splitmix64(u), v);
  return static_cast<std::uint32_t>(key % kEdgeLabels);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 13;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.55, 0.19, 0.19, 77, true});
    graph::graph_builder<std::uint32_t, std::uint32_t> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v, edge_label(std::min(e.u, e.v), std::max(e.u, e.v)));
    });
    gen::for_rank_slice(c, rmat.num_vertices(), [&](std::uint64_t v) {
      builder.add_vertex_meta(v, vertex_label(v));
    });

    graph::dodgr<std::uint32_t, std::uint32_t> g(c);
    builder.build_into(g);

    // Plan API: Alg. 3 needs every label, so its declared projections are
    // identity -- the plan form still buys fusion if more analyses are
    // .add()ed onto the same traversal.
    comm::counting_set<std::uint32_t> counters(c);
    cb::max_edge_label_context<std::uint32_t> ctx{&counters};
    const auto result = cb::plan_for(g, cb::max_edge_label_callback{}, ctx)
                            .run({tripoll::survey_mode::push_pull})
                            .slice(0);
    counters.finalize();
    const auto dist = counters.gather_all();

    if (c.rank0()) {
      std::printf("triangles surveyed: %llu (%.3fs)\n",
                  (unsigned long long)result.triangles_found, result.total.seconds);
      std::printf("max-edge-label distribution over label-distinct triangles:\n");
      std::uint64_t total = 0;
      for (const auto& [label, n] : dist) total += n;
      for (const auto& [label, n] : dist) {
        std::printf("  label %u: %10llu (%.1f%%)\n", label, (unsigned long long)n,
                    total > 0 ? 100.0 * static_cast<double>(n) / static_cast<double>(total)
                              : 0.0);
      }
    }
  });
  return 0;
}
