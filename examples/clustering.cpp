// clustering -- triangle-derived analytics: local clustering coefficients,
// global transitivity and edge support (the truss primitive).
//
// These are the applications the paper cites for local triangle counts
// (truss decomposition, clustering coefficients, community detection); all
// reduce to TriPoll surveys with counting callbacks.
//
// Usage: clustering [scale] [ranks]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/analytics.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"

namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;
namespace ta = tripoll::analytics;

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 12;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.55, 0.19, 0.19, 7, true});
    graph::graph_builder<graph::none, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    graph::dodgr<graph::none, graph::none> g(c);
    builder.build_into(g);

    // Both analytics from ONE fused survey plan: the per-vertex
    // participation callback (clustering) and the per-edge support callback
    // (truss primitive) share a single dry-run/push/pull traversal, so the
    // wedge traffic is paid once instead of twice.
    comm::counting_set<ta::edge_key> support(c);
    const auto s = ta::clustering_and_support(g, support);
    if (c.rank0()) {
      std::printf("triangles            : %llu\n", (unsigned long long)s.triangles);
      std::printf("global transitivity  : %.4f  (3|T| / %llu wedges)\n",
                  s.transitivity, (unsigned long long)s.total_wedges);
      std::printf("average local cc     : %.4f  (over %llu vertices with d>=2)\n",
                  s.average_local_cc, (unsigned long long)s.eligible_vertices);
    }

    // Edge support distribution (how trussy is the graph?).
    std::vector<std::uint64_t> local_supports;
    support.for_all_local([&](const ta::edge_key&, std::uint64_t n) {
      local_supports.push_back(n);
    });
    // Histogram of supports, merged on rank 0.
    std::vector<std::uint64_t> histogram(16, 0);
    for (const auto n : local_supports) {
      histogram[std::min<std::uint64_t>(n, histogram.size() - 1)] += 1;
    }
    auto per_rank = c.all_gather(histogram);
    if (c.rank0()) {
      std::printf("\nedge-support histogram (triangles per edge):\n");
      std::vector<std::uint64_t> total(histogram.size(), 0);
      for (const auto& h : per_rank) {
        for (std::size_t i = 0; i < h.size(); ++i) total[i] += h[i];
      }
      for (std::size_t i = 0; i < total.size(); ++i) {
        if (total[i] == 0) continue;
        std::printf("  support %s%zu: %llu edges\n",
                    i + 1 == total.size() ? ">=" : "", i, (unsigned long long)total[i]);
      }
    }
  });
  return 0;
}
