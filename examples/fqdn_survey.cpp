// fqdn_survey -- the paper's Web Data Commons analysis (Sec. 5.8) on the
// synthetic web graph.
//
// Pages carry their fully-qualified domain name as *string* vertex metadata
// (variable length, serialized without padding).  The survey counts
// 3-tuples of FQDNs over triangles whose three FQDNs are pairwise distinct,
// then post-processes the result around a focus domain ("amazon.com"),
// printing the co-occurrence distribution that Fig. 8 visualizes.
//
// Usage: fqdn_survey [scale] [ranks] [focus-domain]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/web.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 13;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string focus = argc > 3 ? argv[3] : "amazon.com";

  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::web_params params;
    params.scale = scale;

    gen::web_graph g(c);
    gen::build_web_graph(c, g, params);

    // Plan with the callback's declared projections: the FQDN strings ship
    // (vertex identity projection) but edge metadata is dropped.  Received
    // FQDNs reach the callback as string_views into the transport payload;
    // nothing is copied until a tuple actually survives the distinctness
    // filter.
    comm::counting_set<cb::fqdn_tuple> counters(c);
    cb::fqdn_tuple_context ctx{&counters};
    const auto result = cb::plan_for(g, cb::fqdn_tuple_callback{}, ctx)
                            .run({tripoll::survey_mode::push_pull})
                            .slice(0);
    counters.finalize();

    const auto distinct_triangles = c.all_reduce_sum(ctx.distinct_fqdn_triangles);
    const auto unique_tuples = counters.global_size();
    const auto tuples = counters.gather_all();

    if (c.rank0()) {
      std::printf("triangles: %llu total, %llu with 3 distinct FQDNs, "
                  "%llu unique FQDN 3-tuples (%.3fs)\n",
                  (unsigned long long)result.triangles_found,
                  (unsigned long long)distinct_triangles,
                  (unsigned long long)unique_tuples, result.total.seconds);

      // Post-processing (paper: done on a single machine after the survey):
      // all tuples involving the focus domain, aggregated to pair counts.
      std::map<std::pair<std::string, std::string>, std::uint64_t> pairs;
      for (const auto& [tuple, n] : tuples) {
        const auto& [a, b, d] = tuple;
        if (a == focus) {
          pairs[{b, d}] += n;
        } else if (b == focus) {
          pairs[{a, d}] += n;
        } else if (d == focus) {
          pairs[{a, b}] += n;
        }
      }
      std::vector<std::pair<std::uint64_t, std::pair<std::string, std::string>>> top;
      top.reserve(pairs.size());
      for (const auto& [pr, n] : pairs) top.emplace_back(n, pr);
      std::sort(top.rbegin(), top.rend());

      std::printf("\ntop FQDN pairs co-occurring with \"%s\" in triangles:\n",
                  focus.c_str());
      const std::size_t show = std::min<std::size_t>(top.size(), 15);
      for (std::size_t i = 0; i < show; ++i) {
        std::printf("  %8llu  %s + %s\n", (unsigned long long)top[i].first,
                    top[i].second.first.c_str(), top[i].second.second.c_str());
      }
      if (top.empty()) {
        std::printf("  (none -- try a larger scale or a different focus domain)\n");
      }
    }
  });
  return 0;
}
