// quickstart -- the smallest complete TriPoll program.
//
// Builds a graph on a simulated 4-rank runtime, runs a triangle survey with
// the counting callback (paper Alg. 2), and prints the count plus the
// engine's execution metrics.
//
// Usage: quickstart [scale] [ranks] [--ordering degree|degeneracy]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/serial_tc.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

int main(int argc, char** argv) {
  graph::ordering_policy ordering = graph::ordering_policy::degree;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ordering") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--ordering needs a value (degree|degeneracy)\n");
        return 2;
      }
      const auto parsed = graph::parse_ordering(argv[i + 1]);
      if (!parsed) {
        std::fprintf(stderr, "unknown ordering '%s' (degree|degeneracy)\n", argv[i + 1]);
        return 2;
      }
      ordering = *parsed;
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 12;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  comm::runtime::run(ranks, [&](comm::communicator& c) {
    // 1. Every rank contributes a slice of a deterministic R-MAT stream.
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 42, true});
    graph::graph_builder<graph::none, graph::none> builder(c, ordering);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });

    // 2. Collective construction of the order-directed graph.
    graph::dodgr<graph::none, graph::none> g(c);
    builder.build_into(g);
    const auto census = g.census();

    // 3. Survey plan: register the counting callback (Alg. 2) and run one
    //    traversal.  count_callback declares drop projections, so the
    //    traversal would ship zero metadata bytes even on a rich graph;
    //    more .add(callback, context) pairs would fuse into the same pass.
    cb::count_context ctx;
    const auto result = cb::plan_for(g, cb::count_callback{}, ctx)
                            .run({tripoll::survey_mode::push_pull})
                            .slice(0);
    const auto triangles = ctx.global_count(c);

    if (c.rank0()) {
      std::printf("ordering: %s\n", graph::ordering_name(g.ordering()));
      std::printf("graph: |V|=%llu directed |E|=%llu dmax=%llu dmax+=%llu |W+|=%llu\n",
                  (unsigned long long)census.num_vertices,
                  (unsigned long long)census.num_directed_edges,
                  (unsigned long long)census.max_degree,
                  (unsigned long long)census.max_out_degree,
                  (unsigned long long)census.wedge_checks);
      std::printf("triangles: %llu\n", (unsigned long long)triangles);
      std::printf("survey: %.3fs total, %.2f MB communicated, %llu pulls granted\n",
                  result.total.seconds,
                  static_cast<double>(result.total.volume_bytes) / 1e6,
                  (unsigned long long)result.pulls_granted);
    }
  });
  return 0;
}
