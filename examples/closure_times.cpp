// closure_times -- the paper's Reddit experiment (Sec. 5.7, Alg. 4) on the
// synthetic temporal graph.
//
// Edge metadata carries the first-contact timestamp between two authors.
// For every triangle the callback sorts the three timestamps t1<=t2<=t3 and
// increments a distributed counting set at the log2-binned pair
// (wedge-opening time t2-t1, triangle-closing time t3-t1).  The program
// prints the 1-D closing-time distribution and the joint distribution the
// paper plots in Fig. 6.
//
// Usage: closure_times [scale] [ranks]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 13;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::temporal_params params;
    params.scale = scale;

    gen::temporal_graph g(c);
    gen::build_temporal_graph(c, g, params);

    // Plan with the callback's declared minimal projections: vertex metadata
    // is dropped and edge metadata ships as its 8-byte timestamp -- here the
    // edges already ARE uint64 timestamps, but the same plan runs unchanged
    // (and saves the wire) when edges carry rich structs.
    comm::counting_set<cb::closure_bin> counters(c);
    cb::closure_time_context ctx{&counters};
    const auto result = cb::plan_for(g, cb::closure_time_callback{}, ctx)
                            .run({tripoll::survey_mode::push_pull})
                            .slice(0);
    counters.finalize();
    const auto joint = counters.gather_all();

    if (c.rank0()) {
      std::printf("surveyed %llu triangles in %.3fs\n",
                  (unsigned long long)result.triangles_found, result.total.seconds);

      // 1-D closing-time distribution (marginal over opening time).
      std::map<std::uint32_t, std::uint64_t> close_marginal;
      for (const auto& [bin, n] : joint) close_marginal[bin.second] += n;
      std::printf("\nclosing-time distribution (bin = ceil(log2(seconds))):\n");
      for (const auto& [bin, n] : close_marginal) {
        std::printf("  2^%-2u s  %10llu  ", bin, (unsigned long long)n);
        const int stars = n > 0 ? 1 + static_cast<int>(3.0 * std::log10((double)n)) : 0;
        for (int i = 0; i < stars && i < 60; ++i) std::printf("*");
        std::printf("\n");
      }

      // Joint (open, close) distribution, the Fig. 6 heat map as text.
      std::printf("\njoint distribution rows=open cols=close (log10 counts):\n");
      std::uint32_t max_bin = 0;
      for (const auto& [bin, n] : joint) {
        max_bin = std::max({max_bin, bin.first, bin.second});
      }
      std::printf("      ");
      for (std::uint32_t cl = 0; cl <= max_bin; ++cl) std::printf("%3u", cl);
      std::printf("\n");
      for (std::uint32_t op = 0; op <= max_bin; ++op) {
        std::printf("  %3u ", op);
        for (std::uint32_t cl = 0; cl <= max_bin; ++cl) {
          const auto it = joint.find({op, cl});
          if (it == joint.end()) {
            std::printf("  .");
          } else {
            std::printf("%3d", static_cast<int>(std::log10((double)it->second) + 1));
          }
        }
        std::printf("\n");
      }
    }
  });
  return 0;
}
